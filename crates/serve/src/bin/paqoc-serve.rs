//! The resident compilation daemon.
//!
//! Binds a TCP or unix socket, prints one `ready` JSON line on stdout
//! (address, pid, store condition), serves until SIGTERM/SIGINT or a
//! client `drain` request, then drains gracefully — answers or sheds
//! everything admitted, syncs the pulse table to the store — prints a
//! `drained` JSON line, and exits 0.
//!
//! ```text
//! paqoc-serve [--tcp ADDR | --uds PATH] [--workers N]
//!             [--queue-cap N] [--tenant-cap N] [--max-tenants N]
//!             [--read-timeout-ms N] [--idle-timeout-ms N]
//!             [--default-deadline-ms N] [--max-frame-bytes N]
//!             [--pulse-db PATH] [--store-max-bytes N] [--read-only]
//!             [--config m0|tuned|inf] [--backend NAME]
//!             [--chaos-stall-ms N]
//! ```

#![deny(unsafe_code)]

use paqoc_device::FaultConfig;
use paqoc_exec::QueueConfig;
use paqoc_serve::{BindAddr, ConfigPreset, ServeOptions, Server};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the signal handler; polled by the main loop.
static TERMINATE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    #![allow(unsafe_code)]
    use std::sync::atomic::Ordering;

    // Same values on every unix we target (Linux, macOS, BSDs).
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe by construction.
        super::TERMINATE.store(true, Ordering::SeqCst);
    }

    /// Routes SIGTERM and SIGINT to the `TERMINATE` flag.
    pub(crate) fn install() {
        // SAFETY: `signal` registers a handler that does nothing but
        // store to a static atomic — no allocation, locking, or Rust
        // runtime machinery runs in signal context.
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    /// Non-unix fallback: no signal hook — drain via the `drain` op.
    pub(crate) fn install() {}
}

fn parse_args(args: &[String]) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions::default();
    let mut queue = QueueConfig {
        per_tenant_cap: 32,
        total_cap: 256,
        max_tenants: 32,
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--tcp" => opts.addr = BindAddr::Tcp(value(&mut i, flag)?),
            #[cfg(unix)]
            "--uds" => opts.addr = BindAddr::Uds(value(&mut i, flag)?.into()),
            "--workers" => opts.workers = parse_num(&value(&mut i, flag)?, flag)?,
            "--queue-cap" => queue.total_cap = parse_num(&value(&mut i, flag)?, flag)?,
            "--tenant-cap" => queue.per_tenant_cap = parse_num(&value(&mut i, flag)?, flag)?,
            "--max-tenants" => queue.max_tenants = parse_num(&value(&mut i, flag)?, flag)?,
            "--read-timeout-ms" => {
                opts.read_timeout = Duration::from_millis(parse_num(&value(&mut i, flag)?, flag)?)
            }
            "--idle-timeout-ms" => {
                opts.idle_timeout = Duration::from_millis(parse_num(&value(&mut i, flag)?, flag)?)
            }
            "--default-deadline-ms" => {
                opts.default_deadline = Some(Duration::from_millis(parse_num(
                    &value(&mut i, flag)?,
                    flag,
                )?))
            }
            "--max-frame-bytes" => opts.max_frame_bytes = parse_num(&value(&mut i, flag)?, flag)?,
            "--pulse-db" => opts.pulse_db = Some(value(&mut i, flag)?.into()),
            "--store-max-bytes" => {
                opts.store_options.max_bytes = Some(parse_num(&value(&mut i, flag)?, flag)?)
            }
            "--read-only" => opts.store_options.read_only = true,
            "--config" => {
                let name = value(&mut i, flag)?;
                opts.preset =
                    ConfigPreset::parse(&name).ok_or_else(|| format!("unknown config {name:?}"))?;
            }
            "--backend" => opts.backend = value(&mut i, flag)?,
            "--chaos-stall-ms" => {
                let ms: u64 = parse_num(&value(&mut i, flag)?, flag)?;
                opts.fault = Some(FaultConfig::stalling(Duration::from_millis(ms)));
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    opts.queue = queue;
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse::<T>()
        .map_err(|_| format!("{flag}: invalid value {v:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("paqoc-serve: {msg}");
            return ExitCode::from(2);
        }
    };
    sig::install();
    let server = match Server::start(opts) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("paqoc-serve: bind failed: {e}");
            return ExitCode::from(1);
        }
    };
    let stats = server.stats();
    println!(
        "{{\"event\":\"ready\",\"addr\":{},\"pid\":{},\"store\":{}}}",
        paqoc_telemetry::json::escape(server.local_addr()),
        std::process::id(),
        paqoc_telemetry::json::escape(&stats.store),
    );
    let summary = server.run_until(|| TERMINATE.load(Ordering::SeqCst));
    println!(
        "{{\"event\":\"drained\",\"completed\":{},\"shed\":{},\"rejected\":{},\"synced\":{},\"table_len\":{}}}",
        summary.completed, summary.shed, summary.rejected, summary.synced, summary.table_len
    );
    ExitCode::SUCCESS
}
