//! Client and load generator for `paqoc-serve`.
//!
//! ```text
//! paqoc-load <endpoint> replay [--requests N] [--qps F] [--concurrency N]
//!                              [--tenants N] [--deadline-ms N] [--seed N]
//!                              [--full] [--config m0|tuned|inf]
//!                              [--backend NAME]
//!                              [--retries N] [--retry-overloaded]
//!                              [--expect-sheds] [--expect-answers]
//!                              [--max-p99-ms F]
//! paqoc-load <endpoint> one <benchmark> [--deadline-ms N] [--tenant T]
//!                                       [--backend NAME]
//! paqoc-load <endpoint> ping | stats | drain
//! ```
//!
//! `<endpoint>` is `host:port` or `unix:/path.sock`. `replay` prints a
//! one-line JSON [`LoadReport`]; the `--expect-*` / `--max-p99-ms`
//! assertion flags turn it into a CI gate (non-zero exit on violation).

#![deny(unsafe_code)]

use paqoc_math::Rng;
use paqoc_serve::{
    Client, ConfigPreset, Endpoint, Op, ReplayOptions, Request, Response, RetryPolicy,
};
use std::process::ExitCode;
use std::time::Duration;

struct Assertions {
    expect_sheds: bool,
    expect_answers: bool,
    max_p99_ms: Option<f64>,
}

fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse::<T>()
        .map_err(|_| format!("{flag}: invalid value {v:?}"))
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: paqoc-load <endpoint> replay|one|ping|stats|drain [flags]";
    let endpoint = Endpoint::parse(args.first().ok_or(usage)?);
    let cmd = args.get(1).ok_or(usage)?.as_str();
    let rest = &args[2..];
    match cmd {
        "replay" => replay_cmd(&endpoint, rest),
        "one" => one_cmd(&endpoint, rest),
        "ping" | "stats" | "drain" => control_cmd(&endpoint, cmd),
        other => Err(format!("unknown command {other:?}\n{usage}")),
    }
}

fn replay_cmd(endpoint: &Endpoint, args: &[String]) -> Result<ExitCode, String> {
    let mut opts = ReplayOptions::default();
    let mut asserts = Assertions {
        expect_sheds: false,
        expect_answers: false,
        max_p99_ms: None,
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--requests" => opts.requests = parse_num(&value(&mut i, flag)?, flag)?,
            "--qps" => opts.qps = parse_num(&value(&mut i, flag)?, flag)?,
            "--concurrency" => opts.concurrency = parse_num(&value(&mut i, flag)?, flag)?,
            "--tenants" => opts.tenants = parse_num(&value(&mut i, flag)?, flag)?,
            "--deadline-ms" => opts.deadline_ms = Some(parse_num(&value(&mut i, flag)?, flag)?),
            "--seed" => opts.seed = parse_num(&value(&mut i, flag)?, flag)?,
            "--full" => opts.quick = false,
            "--config" => {
                let name = value(&mut i, flag)?;
                opts.preset =
                    ConfigPreset::parse(&name).ok_or_else(|| format!("unknown config {name:?}"))?;
            }
            "--backend" => opts.backend = Some(value(&mut i, flag)?),
            "--retries" => opts.retry.retries = parse_num(&value(&mut i, flag)?, flag)?,
            "--retry-overloaded" => opts.retry.retry_overloaded = true,
            "--expect-sheds" => asserts.expect_sheds = true,
            "--expect-answers" => asserts.expect_answers = true,
            "--max-p99-ms" => asserts.max_p99_ms = Some(parse_num(&value(&mut i, flag)?, flag)?),
            other => return Err(format!("unknown replay flag {other:?}")),
        }
        i += 1;
    }
    let report = paqoc_serve::client::replay(endpoint, &opts);
    println!("{}", report.to_json());
    let mut failures = Vec::new();
    if report.answered() + report.shed() + report.errors + report.transport_errors == 0 {
        failures.push("no requests completed at all".to_string());
    }
    if asserts.expect_sheds && report.shed() == 0 {
        failures.push("expected sheds (overloaded/expired/draining), saw none".to_string());
    }
    if asserts.expect_answers && report.answered() == 0 {
        failures.push("expected answered requests, saw none".to_string());
    }
    if let Some(cap) = asserts.max_p99_ms {
        let p99 = report.latency_ms.p99();
        if report.answered() > 0 && p99 > cap {
            failures.push(format!("p99 {p99:.1} ms exceeds the {cap:.1} ms gate"));
        }
    }
    if failures.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        for f in &failures {
            eprintln!("paqoc-load: ASSERT FAILED: {f}");
        }
        Ok(ExitCode::from(3))
    }
}

fn one_cmd(endpoint: &Endpoint, args: &[String]) -> Result<ExitCode, String> {
    let benchmark = args.first().ok_or("one needs a benchmark name")?;
    let mut req = Request::compile(1, "default", benchmark);
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--deadline-ms" => {
                i += 1;
                let v = args.get(i).ok_or("--deadline-ms needs a value")?;
                req.deadline_ms = Some(parse_num(v, "--deadline-ms")?);
            }
            "--tenant" => {
                i += 1;
                req.tenant = args.get(i).ok_or("--tenant needs a value")?.clone();
            }
            "--backend" => {
                i += 1;
                req.backend = Some(args.get(i).ok_or("--backend needs a value")?.clone());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    let mut client = Client::new(endpoint.clone(), Duration::from_secs(60));
    let mut rng = Rng::seed_from_u64(0x10AD);
    let resp = client
        .call_retrying(&req, &RetryPolicy::default(), &mut rng)
        .map_err(|e| e.to_string())?;
    print_response(&resp);
    Ok(match resp {
        Response::Ok(_) => ExitCode::SUCCESS,
        _ => ExitCode::from(4),
    })
}

fn control_cmd(endpoint: &Endpoint, cmd: &str) -> Result<ExitCode, String> {
    let op = match cmd {
        "ping" => Op::Ping,
        "stats" => Op::Stats,
        _ => Op::Drain,
    };
    let mut client = Client::new(endpoint.clone(), Duration::from_secs(10));
    let resp = client
        .call(&Request::control(1, op))
        .map_err(|e| e.to_string())?;
    print_response(&resp);
    Ok(ExitCode::SUCCESS)
}

fn print_response(resp: &Response) {
    let bytes = paqoc_serve::protocol::encode_response(1, resp);
    println!("{}", String::from_utf8_lossy(&bytes));
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("paqoc-load: {msg}");
            ExitCode::from(2)
        }
    }
}
