//! Contention, isolation and budget acceptance tests for the executor.
//!
//! The heart of the suite is the dedup contract: N workers racing one
//! key must produce **exactly one** generation — the rest take the
//! in-flight dedup path (journaled as `exec.dedup`) — and that must
//! hold even when the one generation panics (`panic_storm`), where the
//! key quarantines instead of retrying per worker.

use paqoc_circuit::{GateKind, Instruction};
use paqoc_device::{Device, FaultConfig};
use paqoc_exec::{
    run_batch, AnalyticFactory, ExecOptions, FaultyAnalyticFactory, JobStatus, Provenance,
    PulseJob, SharedPulseTable, SkipReason,
};
use std::time::{Duration, Instant};

const STALL_EVENT: &str = "exec.stall";

fn cx_group(a: usize, b: usize) -> Vec<Instruction> {
    vec![Instruction::new(GateKind::Cx, vec![a, b], vec![])]
}

fn job(key: &str, group: Vec<Instruction>, priority: f64) -> PulseJob {
    PulseJob {
        key: key.to_string(),
        group,
        priority,
        target_fidelity: 0.999,
    }
}

/// N workers racing the same key: exactly one generation; every racer
/// resolves through dedup (or a shard hit if it arrived after the
/// winner published); `exec.dedup` lands in the journal.
#[test]
fn racing_workers_dedup_to_one_generation() {
    paqoc_telemetry::set_enabled(true);
    let before = paqoc_telemetry::snapshot()
        .counters
        .get("exec.dedup")
        .copied()
        .unwrap_or(0);

    let table = SharedPulseTable::new();
    // A 50 ms stall guarantees the racers arrive while the winner is
    // still in flight, so the dedup path actually exercises.
    let factory = FaultyAnalyticFactory::new(FaultConfig::stalling(Duration::from_millis(50)));
    let jobs: Vec<PulseJob> = (0..8)
        .map(|i| job("shared-key", cx_group(0, 1), i as f64))
        .collect();
    let report = run_batch(
        &jobs,
        &Device::grid5x5(),
        &factory,
        &table,
        &ExecOptions {
            threads: 8,
            ..ExecOptions::default()
        },
    );

    assert_eq!(report.generated, 1, "exactly one generation for one key");
    assert_eq!(report.panics, 0);
    assert_eq!(report.failures, 0);
    assert_eq!(report.dedup_hits + report.shard_hits, 7);
    assert!(report.dedup_hits >= 1, "stalled winner must force dedup");
    let est = report.statuses[0]
        .estimate()
        .or_else(|| report.statuses.iter().find_map(JobStatus::estimate))
        .expect("winner produced a pulse");
    for status in &report.statuses {
        assert_eq!(status.estimate(), Some(est), "all racers see one pulse");
    }
    assert_eq!(table.len(), 1);

    let snap = paqoc_telemetry::snapshot();
    let after = snap.counters.get("exec.dedup").copied().unwrap_or(0);
    assert!(
        after >= before + report.dedup_hits as u64,
        "dedup counter must advance"
    );
    assert!(
        snap.events.iter().any(|e| e.name == "exec.dedup"
            && e.fields.iter().any(|(k, _)| k == "worker")
            && e.fields.iter().any(|(k, _)| k == "key")),
        "dedup must be journaled with worker and key fields"
    );
}

/// Under `panic_storm` the racing workers still cause exactly one
/// generation attempt: the panic quarantines the key before the claim
/// drops, so racers resolve to quarantine skips, never to retries.
#[test]
fn panic_storm_contention_quarantines_once() {
    let table = SharedPulseTable::new();
    let cfg = FaultConfig {
        stall: Duration::from_millis(50),
        ..FaultConfig::panic_storm(7, 1.0)
    };
    let factory = FaultyAnalyticFactory::new(cfg);
    let jobs: Vec<PulseJob> = (0..8)
        .map(|_| job("doomed-key", cx_group(0, 1), 1.0))
        .collect();
    let report = run_batch(
        &jobs,
        &Device::grid5x5(),
        &factory,
        &table,
        &ExecOptions {
            threads: 8,
            ..ExecOptions::default()
        },
    );

    assert_eq!(
        report.panics, 1,
        "the storm fires once, not once per worker"
    );
    assert_eq!(report.generated, 0);
    assert_eq!(
        report.skipped, 7,
        "every racer resolves to a quarantine skip: {:?}",
        report.statuses
    );
    assert!(report.statuses.iter().all(|s| matches!(
        s,
        JobStatus::Panicked(_) | JobStatus::Skipped(SkipReason::Quarantined)
    )));
    assert!(table.is_quarantined("doomed-key"));
    assert!(table.get("doomed-key").is_none(), "no pulse was cached");

    // A fresh batch on the same key skips entirely — zero attempts.
    let again = run_batch(
        &jobs[..2],
        &Device::grid5x5(),
        &factory,
        &table,
        &ExecOptions::default(),
    );
    assert_eq!(again.panics, 0);
    assert_eq!(again.generated, 0);
    assert_eq!(again.skipped, 2);
}

/// Pulses, statuses and the table snapshot are bit-identical across
/// thread counts, including which keys fail: faults are seeded per key,
/// not per schedule.
#[test]
fn batch_results_are_identical_across_thread_counts() {
    let device = Device::grid5x5();
    let pairs = [(0, 1), (1, 2), (5, 6), (6, 7), (10, 11), (12, 13), (2, 7)];
    let jobs: Vec<PulseJob> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| job(&format!("k{a}-{b}"), cx_group(a, b), i as f64))
        .collect();
    let cfg = FaultConfig::convergence_storm(42, 0.4);
    let run = |threads: usize| {
        let table = SharedPulseTable::new();
        let report = run_batch(
            &jobs,
            &device,
            &FaultyAnalyticFactory::new(cfg),
            &table,
            &ExecOptions {
                threads,
                ..ExecOptions::default()
            },
        );
        (report, table.snapshot())
    };
    let (r1, snap1) = run(1);
    let (r8, snap8) = run(8);
    assert_eq!(snap1, snap8, "cached pulses must not depend on threads");
    assert_eq!(r1.generated, r8.generated);
    assert_eq!(r1.failures, r8.failures);
    assert!(r1.failures > 0, "the storm must actually fail some keys");
    for (a, b) in r1.statuses.iter().zip(&r8.statuses) {
        assert_eq!(a, b, "per-job statuses must match across thread counts");
    }
}

/// Shared budgets stop work promptly and deterministically: an
/// already-spent budget skips everything; a one-generation budget
/// admits exactly one at `threads=1`.
#[test]
fn cost_budget_is_shared_and_checked_before_start() {
    let device = Device::grid5x5();
    let jobs: Vec<PulseJob> = (0..5)
        .map(|i| job(&format!("b{i}"), cx_group(i, i + 1), 0.0))
        .collect();

    let table = SharedPulseTable::new();
    let exhausted = run_batch(
        &jobs,
        &device,
        &AnalyticFactory,
        &table,
        &ExecOptions {
            threads: 4,
            cost_budget_units: Some(10.0),
            cost_spent_units: 10.0,
            ..ExecOptions::default()
        },
    );
    assert_eq!(exhausted.generated, 0);
    assert_eq!(exhausted.skipped, 5);
    assert!(exhausted
        .statuses
        .iter()
        .all(|s| *s == JobStatus::Skipped(SkipReason::CostBudget)));

    let table = SharedPulseTable::new();
    let tight = run_batch(
        &jobs,
        &device,
        &AnalyticFactory,
        &table,
        &ExecOptions {
            threads: 1,
            cost_budget_units: Some(1e-9),
            ..ExecOptions::default()
        },
    );
    assert_eq!(tight.generated, 1, "first job starts under budget");
    assert_eq!(tight.skipped, 4, "charge lands before the next check");
    assert!(tight.cost_spent_units > 0.0);
}

/// Stalled workers cannot sail past a shared deadline: jobs not started
/// by the deadline are skipped, while work already begun completes.
#[test]
fn stall_fault_interacts_with_shared_deadline() {
    let device = Device::grid5x5();
    let factory = FaultyAnalyticFactory::new(FaultConfig::stalling(Duration::from_millis(50)));
    let jobs: Vec<PulseJob> = (0..6)
        .map(|i| job(&format!("d{i}"), cx_group(i, i + 1), 0.0))
        .collect();

    // Already-passed deadline: nothing starts.
    let table = SharedPulseTable::new();
    let expired = run_batch(
        &jobs,
        &device,
        &factory,
        &table,
        &ExecOptions {
            threads: 2,
            deadline: Some(Instant::now()),
            ..ExecOptions::default()
        },
    );
    assert_eq!(expired.generated, 0);
    assert!(expired
        .statuses
        .iter()
        .all(|s| *s == JobStatus::Skipped(SkipReason::Deadline)));

    // A deadline shorter than the stalled batch: the first generation
    // completes (deadlines don't abort in-flight work, matching the
    // sequential pipeline), later jobs are skipped.
    let table = SharedPulseTable::new();
    let partial = run_batch(
        &jobs,
        &device,
        &factory,
        &table,
        &ExecOptions {
            threads: 1,
            deadline: Some(Instant::now() + Duration::from_millis(60)),
            ..ExecOptions::default()
        },
    );
    assert!(
        partial.generated >= 1,
        "work begun before the deadline runs"
    );
    assert!(
        partial.skipped >= 1,
        "a 300 ms stalled batch cannot fit a 60 ms deadline: {:?}",
        partial.statuses
    );
}

/// Per-worker accounting must cover the worker's whole run loop: every
/// job is attributed to exactly one worker, and each worker's
/// `busy + idle + steal` accounts for its wall time up to per-iteration
/// bookkeeping.
#[test]
fn worker_accounting_covers_wall_time() {
    let device = Device::grid5x5();
    // A 20 ms stall per generation makes busy time dominate, so the
    // utilization assertion is meaningful rather than noise-bound.
    let factory = FaultyAnalyticFactory::new(FaultConfig::stalling(Duration::from_millis(20)));
    let jobs: Vec<PulseJob> = (0..8)
        .map(|i| job(&format!("u{i}"), cx_group(i, i + 1), 0.0))
        .collect();
    let report = run_batch(
        &jobs,
        &device,
        &factory,
        &SharedPulseTable::new(),
        &ExecOptions {
            threads: 4,
            // Keep the watchdog quiet: this test is about accounting.
            stall_budget: Some(Duration::from_secs(3600)),
            ..ExecOptions::default()
        },
    );

    assert_eq!(report.workers.len(), 4, "one stats row per worker");
    for (i, w) in report.workers.iter().enumerate() {
        assert_eq!(w.worker, i, "rows sorted by worker index");
        let accounted = w.busy_ns + w.idle_ns + w.steal_ns;
        assert!(
            accounted <= w.wall_ns,
            "worker {i}: accounted {accounted} ns exceeds wall {} ns",
            w.wall_ns
        );
        assert!(
            w.wall_ns - accounted < 10_000_000,
            "worker {i}: {} ns of wall time unaccounted (busy+idle+steal must ≈ wall)",
            w.wall_ns - accounted
        );
        let util = w.utilization();
        assert!((0.0..=1.0).contains(&util));
        if w.jobs > 0 {
            assert!(
                w.busy_ns >= 15_000_000,
                "worker {i} ran {} stalled jobs but was busy only {} ns",
                w.jobs,
                w.busy_ns
            );
        }
    }
    let pulled: usize = report.workers.iter().map(|w| w.jobs).sum();
    assert_eq!(pulled, jobs.len(), "every job pulled exactly once");
    let steals: usize = report.workers.iter().map(|w| w.steals).sum();
    assert!(
        steals <= pulled,
        "steal count is a subset of pulled jobs ({steals} vs {pulled})"
    );
}

/// The stall watchdog flags each stalled generation exactly once: a
/// 75 ms injected stall blows through the derived 25 ms floor budget,
/// producing one `exec.stall` journal event per job — never more, even
/// though the watchdog rescans every 5 ms for the stall's whole tail.
#[test]
fn watchdog_flags_each_stalled_job_exactly_once() {
    paqoc_telemetry::set_enabled(true);
    let device = Device::grid5x5();
    let factory = FaultyAnalyticFactory::new(FaultConfig::stalling(Duration::from_millis(75)));
    // Unique keys so concurrent tests sharing the global journal can't
    // collide with the per-key assertions below.
    let keys = ["wdog-a", "wdog-b", "wdog-c"];
    let jobs: Vec<PulseJob> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| job(k, cx_group(i, i + 1), 0.0))
        .collect();
    let report = run_batch(
        &jobs,
        &device,
        &factory,
        &SharedPulseTable::new(),
        &ExecOptions {
            threads: 3,
            ..ExecOptions::default()
        },
    );

    assert_eq!(report.generated, 3, "stalled jobs still complete");
    assert_eq!(
        report.stalls, 3,
        "every 75 ms stall must trip the 25 ms floor budget"
    );
    let snap = paqoc_telemetry::snapshot();
    for key in keys {
        let flagged = snap
            .events
            .iter()
            .filter(|e| {
                e.name == STALL_EVENT
                    && e.fields.iter().any(
                        |(k, v)| matches!(v, paqoc_telemetry::FieldValue::Str(s) if k == "key" && s == key),
                    )
            })
            .count();
        assert_eq!(flagged, 1, "job {key} must be flagged exactly once");
    }
    assert!(
        snap.events.iter().any(|e| {
            e.name == STALL_EVENT
                && e.fields.iter().any(|(k, _)| k == "budget_ms")
                && e.fields.iter().any(|(k, _)| k == "elapsed_ms")
        }),
        "stall events carry budget and elapsed fields"
    );

    // A generous explicit budget silences the watchdog entirely.
    let quiet = run_batch(
        &jobs,
        &device,
        &factory,
        &SharedPulseTable::new(),
        &ExecOptions {
            threads: 3,
            stall_budget: Some(Duration::from_secs(3600)),
            base_seed: 1,
            ..ExecOptions::default()
        },
    );
    assert_eq!(quiet.stalls, 0, "explicit budget overrides the floor");
}

/// Store-backed tables resolve cross-process hits with store
/// provenance, and write-behind persists batch results on sync.
#[test]
fn batch_write_behind_round_trips_through_store() {
    let dir = std::env::temp_dir().join(format!("paqoc_exec_batch_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("batch.pqps");
    let _ = std::fs::remove_file(&path);
    let device = Device::grid5x5();
    let jobs: Vec<PulseJob> = (0..4)
        .map(|i| job(&format!("s{i}"), cx_group(i, i + 1), 0.0))
        .collect();

    let table = SharedPulseTable::new()
        .with_store(paqoc_store::PulseStore::open(&path, device.fingerprint()).expect("open"));
    let cold = run_batch(
        &jobs,
        &device,
        &AnalyticFactory,
        &table,
        &ExecOptions::default(),
    );
    assert_eq!(cold.generated, 4);
    assert_eq!(table.sync().expect("sync"), 4);

    let table2 = SharedPulseTable::new()
        .with_store(paqoc_store::PulseStore::open(&path, device.fingerprint()).expect("reopen"));
    let warm = run_batch(
        &jobs,
        &device,
        &AnalyticFactory,
        &table2,
        &ExecOptions::default(),
    );
    assert_eq!(warm.generated, 0, "warm run must not regenerate");
    assert_eq!(warm.store_hits, 4);
    assert!(warm
        .statuses
        .iter()
        .all(|s| matches!(s, JobStatus::Hit(_, Provenance::Store))));
    let _ = std::fs::remove_file(&path);
}
