//! `Send`-able pulse-source construction for the worker pool.
//!
//! The sequential pipeline hands one long-lived `&mut dyn PulseSource`
//! down the call stack; workers cannot share it. A
//! [`PulseSourceFactory`] instead builds a **fresh, owned source per
//! job**, seeded from the job key, so a pulse depends only on
//! `(key, group, device, target)` — never on which worker ran it, in
//! what order, or how many threads existed. That per-key seeding is the
//! whole determinism contract: `threads=1` and `threads=N` produce
//! bit-identical pulses because every generation is a pure function of
//! its job.
//!
//! Warm-starting is deliberately absent here: similarity warm-starts
//! read "the closest pulse generated *so far*", which is a schedule
//! artifact. Batch jobs always run cold; the sequential ladder on top
//! keeps its warm-start behavior for the keys the batch did not cover.

use paqoc_device::{AnalyticModel, FaultConfig, FaultySource, PulseSource};

/// Builds an owned pulse source for one job.
///
/// `seed` is derived from the job key (see [`job_seed`]); deterministic
/// sources (the analytic surrogate) may ignore it, stochastic ones
/// (GRAPE restarts, fault injection) must fold it into their stream so
/// replays are exact per key.
pub trait PulseSourceFactory: Send + Sync {
    /// Creates a fresh source seeded for one job.
    fn make(&self, seed: u64) -> Box<dyn PulseSource + Send>;

    /// Short identifier used in reports.
    fn name(&self) -> &'static str {
        "factory"
    }
}

/// FNV-1a hash of a job key — the per-job seed.
///
/// Stable across runs, platforms and thread counts; the same function
/// the store uses for device fingerprints, so seeds are reproducible
/// from logs.
pub fn job_seed(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Factory for the deterministic analytic surrogate.
///
/// [`AnalyticModel`] is a pure function of its inputs, so the seed is
/// ignored — every worker computes the same pulse for the same group.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnalyticFactory;

impl PulseSourceFactory for AnalyticFactory {
    fn make(&self, _seed: u64) -> Box<dyn PulseSource + Send> {
        Box::new(AnalyticModel::new())
    }

    fn name(&self) -> &'static str {
        "analytic"
    }
}

/// Factory wrapping the analytic surrogate in seeded fault injection.
///
/// The job seed is XOR-folded into the configured fault seed, so fault
/// draws are a function of the job key — a key that panics under
/// `panic_storm` panics on every worker and every thread count, which
/// is what the quarantine tests rely on.
#[derive(Clone, Copy, Debug)]
pub struct FaultyAnalyticFactory {
    cfg: FaultConfig,
}

impl FaultyAnalyticFactory {
    /// Creates a factory injecting faults per `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultyAnalyticFactory { cfg }
    }
}

impl PulseSourceFactory for FaultyAnalyticFactory {
    fn make(&self, seed: u64) -> Box<dyn PulseSource + Send> {
        let cfg = FaultConfig {
            seed: self.cfg.seed ^ seed,
            ..self.cfg
        };
        Box::new(FaultySource::new(AnalyticModel::new(), cfg))
    }

    fn name(&self) -> &'static str {
        "faulty-analytic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_seed_is_stable_and_key_sensitive() {
        assert_eq!(job_seed("a"), job_seed("a"));
        assert_ne!(job_seed("a"), job_seed("b"));
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(job_seed(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn factories_build_usable_sources() {
        use paqoc_circuit::{GateKind, Instruction};
        let dev = paqoc_device::Device::grid5x5();
        let cx = [Instruction::new(GateKind::Cx, vec![0, 1], vec![])];
        let mut a = AnalyticFactory.make(7);
        let mut b = AnalyticFactory.make(99);
        let ea = a.generate(&cx, &dev, 0.999, None);
        let eb = b.generate(&cx, &dev, 0.999, None);
        assert_eq!(ea, eb, "analytic factory must ignore the seed");
        let mut f = FaultyAnalyticFactory::new(FaultConfig::default()).make(7);
        assert!(f.generate(&cx, &dev, 0.999, None).is_well_formed());
    }
}
