//! # paqoc-exec
//!
//! A zero-dependency, std-`thread` work-stealing executor that turns
//! pulse generation — the serial bottleneck of the whole pipeline —
//! into explicit [`PulseJob`] batches run across a configurable worker
//! pool. AccQOC observes that pulse-DB construction is embarrassingly
//! parallel across subcircuits, and PAQOC's per-iteration candidate set
//! (top-k disjoint merge candidates) is exactly such an independent job
//! batch; this crate supplies the machinery without dragging in an
//! async runtime or a threadpool dependency.
//!
//! The pieces:
//!
//! * [`SharedPulseTable`] — sharded, lock-striped pulse cache with
//!   per-key in-flight dedup, persistent-store read-through and
//!   single-writer write-behind ([`shared_table`]).
//! * [`PulseSourceFactory`] — `Send`-able per-job source construction,
//!   seeded by [`job_seed`] of the key so results are bit-identical
//!   regardless of thread count or schedule ([`factory`]).
//! * [`run_batch`] — the work-stealing pool itself, with shared
//!   deadline/cost budgets, `catch_unwind` panic isolation and key
//!   quarantine ([`executor`]).
//! * [`parallel_map`] — order-preserving parallel map used by the
//!   bench harness to compile the 17-benchmark suite concurrently.
//! * [`FairQueue`] — bounded multi-tenant fair-share admission queue
//!   with reject-not-buffer overload behaviour and a drain lifecycle,
//!   the scheduling core of the resident service ([`fair_queue`]).
//! * [`FlightRecorder`] — opt-in background metrics sampler
//!   (`PAQOC_METRICS_MS`) snapshotting gauges and process CPU/RSS into
//!   the event journal, strictly off the job-execution path
//!   ([`recorder`]).
//!
//! Thread count resolves as: explicit option → `PAQOC_THREADS` env →
//! `std::thread::available_parallelism()`, clamped to
//! `1..=`[`MAX_THREADS`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod factory;
pub mod fair_queue;
pub mod recorder;
pub mod shared_table;

pub use fair_queue::{FairQueue, Pop, PushError, QueueConfig};

pub use executor::{
    run_batch, stall_budget, BatchReport, ExecOptions, JobStatus, PulseJob, SkipReason,
    WorkerStats, STALL_BUDGET_FLOOR,
};
pub use factory::{job_seed, AnalyticFactory, FaultyAnalyticFactory, PulseSourceFactory};
pub use recorder::{interval_from_env, FlightRecorder, METRICS_ENV};
pub use shared_table::{Claim, Provenance, SharedPulseTable, StoreHealth, DEFAULT_SHARDS};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Hard ceiling on worker counts, protecting against a typo'd
/// `PAQOC_THREADS=4000` spawning thousands of OS threads.
pub const MAX_THREADS: usize = 64;

/// Parses the `PAQOC_THREADS` environment knob (positive integer).
pub fn threads_from_env() -> Option<usize> {
    std::env::var("PAQOC_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

/// Resolves the worker count: `requested` → `PAQOC_THREADS` →
/// available hardware parallelism, clamped to `1..=`[`MAX_THREADS`].
pub fn effective_threads(requested: Option<usize>) -> usize {
    requested
        .or_else(threads_from_env)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, MAX_THREADS)
}

/// Order-preserving parallel map: applies `f(index, item)` to every
/// item on up to `threads` std workers and returns results in input
/// order. Items are claimed by an atomic cursor, so the work balances
/// without a queue; with `threads == 1` this degenerates to a plain
/// in-order loop, which is what the determinism smoke compares against.
///
/// A panicking `f` poisons only that worker; the affected item's slot
/// is reported via `None` in the panic-tolerant variant
/// [`try_parallel_map`]. `parallel_map` itself propagates the panic
/// after all workers stop.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let results = try_parallel_map(items, threads, &f);
    if results.iter().any(Option::is_none) {
        panic!("parallel_map worker panicked");
    }
    results.into_iter().flatten().collect()
}

/// Like [`parallel_map`], but a panicking `f` yields `None` for its
/// item instead of aborting the whole map.
pub fn try_parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<Option<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, MAX_THREADS).min(n.max(1));
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let Some(item) = slots[i].lock().ok().and_then(|mut s| s.take()) else {
                    continue;
                };
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, item)));
                if let (Ok(r), Ok(mut slot)) = (result, out[i].lock()) {
                    *slot = Some(r);
                }
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order_at_any_width() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 3, 8] {
            let out = parallel_map(items.clone(), threads, |i, x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_parallel_map_isolates_panics() {
        let out = try_parallel_map((0..10).collect::<Vec<usize>>(), 4, |_, x| {
            assert!(x != 5, "boom");
            x
        });
        assert_eq!(out.iter().filter(|r| r.is_none()).count(), 1);
        assert!(out[5].is_none());
        assert_eq!(out[4], Some(4));
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(Some(0)), 1);
        assert_eq!(effective_threads(Some(3)), 3);
        assert_eq!(effective_threads(Some(100_000)), MAX_THREADS);
    }
}
