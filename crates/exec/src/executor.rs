//! The work-stealing batch executor.
//!
//! [`run_batch`] takes a set of [`PulseJob`]s — independent gate groups
//! whose pulses a criticality-search iteration (or a benchmark sweep)
//! will need — and generates them across `threads` std workers. Jobs
//! are sorted by descending priority (predicted latency delta: the
//! biggest candidate first, mirroring the paper's top-k ordering) and
//! dealt round-robin into per-worker deques; a worker pops its own
//! front and steals from victims' backs, so long GRAPE runs start early
//! and stragglers are balanced without a global queue lock.
//!
//! Determinism: each generation uses a fresh source from the
//! [`PulseSourceFactory`](crate::PulseSourceFactory), seeded by
//! [`job_seed`](crate::job_seed) of the key, with no warm start — the
//! pulse is a pure function of the job, so `threads=1` and `threads=N`
//! produce bit-identical tables. Deadline/cost-budget runs are the
//! documented exception: which jobs get skipped depends on the
//! schedule, exactly as wall-clock deadlines already behave in the
//! sequential pipeline.
//!
//! Isolation: every generation runs under `catch_unwind`; a panic
//! quarantines the key in the [`SharedPulseTable`] (so a deterministic
//! crash fires once, not once per retry or worker) and the batch keeps
//! going. Budgets are shared atomically: once the cost ceiling or the
//! deadline is hit, all workers stop starting new generations.

use crate::factory::{job_seed, PulseSourceFactory};
use crate::shared_table::{Claim, Provenance, SharedPulseTable};
use paqoc_circuit::Instruction;
use paqoc_device::{Device, PulseEstimate};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One unit of pulse-generation work.
#[derive(Clone, Debug)]
pub struct PulseJob {
    /// Cache key (the caller's `composite_key`); opaque to the
    /// executor, which shards, dedups and seeds by it.
    pub key: String,
    /// The gate group to realize (earlier instructions applied first).
    pub group: Vec<Instruction>,
    /// Scheduling priority — the predicted latency delta of the merge
    /// candidate this pulse serves. Higher runs earlier.
    pub priority: f64,
    /// Fidelity target passed to the source.
    pub target_fidelity: f64,
}

impl PulseJob {
    /// Number of distinct qubits the group touches.
    pub fn qubits(&self) -> usize {
        self.group
            .iter()
            .flat_map(|inst| inst.qubits().iter().copied())
            .collect::<BTreeSet<_>>()
            .len()
    }
}

/// Why a job was skipped without attempting generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkipReason {
    /// The shared deadline passed before the job started.
    Deadline,
    /// The shared cost budget was exhausted before the job started.
    CostBudget,
    /// The key is quarantined from an earlier panic.
    Quarantined,
}

/// Per-job outcome, aligned with the input job order.
#[derive(Clone, Debug, PartialEq)]
pub enum JobStatus {
    /// This worker generated the pulse.
    Generated(PulseEstimate),
    /// The pulse already existed (shard or persistent store).
    Hit(PulseEstimate, Provenance),
    /// Another worker generated it first; this is the dedup path.
    Deduped(PulseEstimate),
    /// Generation failed cleanly (typed source error); retriable.
    Failed(String),
    /// The source panicked; the key is now quarantined.
    Panicked(String),
    /// Not attempted (see [`SkipReason`]).
    Skipped(SkipReason),
}

impl JobStatus {
    /// The usable pulse, when the job produced or found one.
    pub fn estimate(&self) -> Option<PulseEstimate> {
        match self {
            JobStatus::Generated(est) | JobStatus::Deduped(est) | JobStatus::Hit(est, _) => {
                Some(*est)
            }
            _ => None,
        }
    }
}

/// Batch execution knobs.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Worker count (min 1). See [`effective_threads`](crate::effective_threads).
    pub threads: usize,
    /// Shared wall-clock deadline: jobs not started by then are skipped.
    pub deadline: Option<Instant>,
    /// Shared cost ceiling in source cost units; checked atomically
    /// before each generation starts.
    pub cost_budget_units: Option<f64>,
    /// Cost already spent before this batch (the pipeline's running
    /// total), charged against the same ceiling.
    pub cost_spent_units: f64,
    /// Seed folded (XOR) into every per-key job seed.
    pub base_seed: u64,
    /// Fixed per-job stall-watchdog budget. `None` derives the budget
    /// from the job's predicted latency (see [`stall_budget`]); `Some`
    /// overrides it uniformly — tests and latency-sensitive callers.
    pub stall_budget: Option<Duration>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: 1,
            deadline: None,
            cost_budget_units: None,
            cost_spent_units: 0.0,
            base_seed: 0,
            stall_budget: None,
        }
    }
}

/// Floor of the derived stall-watchdog budget: generations faster than
/// this can never be flagged, however small their predicted latency.
pub const STALL_BUDGET_FLOOR: Duration = Duration::from_millis(25);

/// Wall-clock allowance per nanosecond of predicted latency when
/// deriving a stall budget: bigger merge candidates get proportionally
/// more time before the watchdog flags their worker.
const STALL_BUDGET_WALL_PER_PREDICTED_NS: f64 = 10_000.0;

/// How long a worker may spend generating one job before the watchdog
/// journals an `exec.stall` event for it: the explicit
/// [`ExecOptions::stall_budget`] when set, otherwise
/// [`STALL_BUDGET_FLOOR`] + the job's predicted latency scaled by a
/// wall-time allowance. Purely observational — a flagged job keeps
/// running; the budget bounds silence, not work.
pub fn stall_budget(job: &PulseJob, opts: &ExecOptions) -> Duration {
    if let Some(budget) = opts.stall_budget {
        return budget;
    }
    let scaled_ns = (job.priority.max(0.0) * STALL_BUDGET_WALL_PER_PREDICTED_NS).min(1e15);
    STALL_BUDGET_FLOOR + Duration::from_nanos(scaled_ns as u64)
}

/// Per-worker utilization accounting for one batch: where this worker's
/// wall time went, split into busy (executing jobs, dedup checks
/// included), idle (waiting on its own empty deque, plus ramp-down) and
/// steal (acquiring work from a victim's deque). The executor
/// guarantees `busy + idle + steal ≈ wall` — the remainder is
/// per-iteration bookkeeping measured in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index within the batch pool.
    pub worker: usize,
    /// Jobs this worker pulled from any deque (all outcomes, dedups and
    /// skips included).
    pub jobs: usize,
    /// Jobs acquired by stealing from a victim's deque.
    pub steals: usize,
    /// Nanoseconds spent executing jobs.
    pub busy_ns: u64,
    /// Nanoseconds spent acquiring from the worker's own deque or
    /// discovering that every deque is empty.
    pub idle_ns: u64,
    /// Nanoseconds spent acquiring stolen jobs.
    pub steal_ns: u64,
    /// Total wall time of this worker's run loop.
    pub wall_ns: u64,
}

impl WorkerStats {
    /// Busy share of this worker's wall time, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.wall_ns as f64
        }
    }
}

/// What a batch did, with per-job statuses in input order.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// One status per input job, same order.
    pub statuses: Vec<JobStatus>,
    /// Pulses generated by workers in this batch.
    pub generated: usize,
    /// Jobs resolved from a shard already holding the pulse.
    pub shard_hits: usize,
    /// Jobs resolved by persistent-store read-through.
    pub store_hits: usize,
    /// Jobs that raced an in-flight generation and reused its result.
    pub dedup_hits: usize,
    /// Clean generation failures.
    pub failures: usize,
    /// Panicking generations (keys now quarantined).
    pub panics: usize,
    /// Jobs skipped for deadline/budget/quarantine.
    pub skipped: usize,
    /// Cost units spent by this batch's generations.
    pub cost_spent_units: f64,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Per-worker utilization accounting, indexed by worker.
    pub workers: Vec<WorkerStats>,
    /// Jobs the stall watchdog flagged (one `exec.stall` journal event
    /// each). Zero when telemetry is disabled — the watchdog thread
    /// only runs while collection is on.
    pub stalls: usize,
    /// Nanoseconds spent in each numeric kernel by this batch's
    /// workers, keyed by kernel name (`mathkit.expm`, …). Empty when
    /// kernel probes are disarmed. Times are schedule-dependent — soft
    /// data, never folded into deterministic outputs.
    pub kernel_ns: BTreeMap<String, u64>,
    /// Kernel call counts matching [`kernel_ns`](Self::kernel_ns).
    /// Unlike the times, the counts are deterministic across thread
    /// counts: the same jobs run the same kernels.
    pub kernel_calls: BTreeMap<String, u64>,
}

impl BatchReport {
    fn tally(&mut self) {
        for status in &self.statuses {
            match status {
                JobStatus::Generated(_) => self.generated += 1,
                JobStatus::Hit(_, Provenance::Store) => self.store_hits += 1,
                JobStatus::Hit(_, _) => self.shard_hits += 1,
                JobStatus::Deduped(_) => self.dedup_hits += 1,
                JobStatus::Failed(_) => self.failures += 1,
                JobStatus::Panicked(_) => self.panics += 1,
                JobStatus::Skipped(_) => self.skipped += 1,
            }
        }
    }
}

/// Atomic f64 accumulator (bit-cast spins), for the shared cost tally.
struct AtomicCost(AtomicU64);

impl AtomicCost {
    fn new(v: f64) -> Self {
        AtomicCost(AtomicU64::new(v.to_bits()))
    }

    fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

struct WorkerYield {
    done: Vec<(usize, JobStatus)>,
    /// Jobs that hit the in-flight dedup path, resolved after the join.
    pending: Vec<usize>,
    /// This worker's utilization accounting.
    stats: WorkerStats,
    /// Per-kernel `(calls, ns)` deltas this worker's jobs produced,
    /// from the thread-local probe totals. Empty when probes are off.
    kernels: BTreeMap<&'static str, (u64, u64)>,
}

/// What a worker is generating right now, published for the stall
/// watchdog. One slot per worker; the worker writes it before calling
/// the source and clears it after, the watchdog reads it on its own
/// thread and flags it at most once.
struct ActiveJob {
    idx: usize,
    started: Instant,
    flagged: bool,
}

/// Watchdog scan cadence. Shutdown latency is bounded by one tick.
const WATCHDOG_TICK: Duration = Duration::from_millis(5);

/// The stall watchdog: scans every worker's active-job slot and, when a
/// generation has run past its [`stall_budget`], journals one
/// `exec.stall` event for it (exactly once per stalled job — the slot's
/// `flagged` bit is the latch). Observational only: the job keeps
/// running, nothing is cancelled. Runs on its own thread, strictly off
/// the job-execution path, and only while telemetry is enabled.
fn watchdog(
    jobs: &[PulseJob],
    active: &[Mutex<Option<ActiveJob>>],
    opts: &ExecOptions,
    stop: &AtomicBool,
    stall_count: &AtomicU64,
) {
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(WATCHDOG_TICK);
        for (worker, slot) in active.iter().enumerate() {
            let Ok(mut guard) = slot.lock() else {
                continue;
            };
            let Some(entry) = guard.as_mut() else {
                continue;
            };
            if entry.flagged {
                continue;
            }
            let job = &jobs[entry.idx];
            let budget = stall_budget(job, opts);
            let elapsed = entry.started.elapsed();
            if elapsed < budget {
                continue;
            }
            entry.flagged = true;
            stall_count.fetch_add(1, Ordering::AcqRel);
            paqoc_telemetry::counter("exec.stall", 1);
            paqoc_telemetry::event!(
                "exec.stall",
                worker = worker as u64,
                key = job.key.as_str(),
                arity = job.qubits() as u64,
                priority = job.priority,
                elapsed_ms = elapsed.as_millis() as u64,
                budget_ms = budget.as_millis() as u64,
            );
        }
    }
}

/// Runs `jobs` across `opts.threads` work-stealing workers against the
/// shared `table`. Statuses come back in input-job order; pulses land
/// in the table (and its write-behind buffer — call
/// [`SharedPulseTable::sync`] afterwards to persist).
pub fn run_batch(
    jobs: &[PulseJob],
    device: &Device,
    factory: &dyn PulseSourceFactory,
    table: &SharedPulseTable,
    opts: &ExecOptions,
) -> BatchReport {
    let start = Instant::now();
    let batch_span = paqoc_telemetry::span("exec.batch");
    let batch_id = batch_span.id();
    let threads = opts
        .threads
        .clamp(1, MAX_BATCH_THREADS)
        .min(jobs.len().max(1));

    // Priority-descending schedule, index-tie-broken so the order (and
    // with it the threads=1 run) is fully deterministic.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[b]
            .priority
            .partial_cmp(&jobs[a].priority)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (pos, idx) in order.into_iter().enumerate() {
        if let Ok(mut q) = queues[pos % threads].lock() {
            q.push_back(idx);
        }
    }

    let spent = AtomicCost::new(opts.cost_spent_units);
    let over_budget = AtomicBool::new(false);
    let batch_cost = AtomicCost::new(0.0);

    // Live-metrics plumbing: queue-depth gauges for the flight recorder
    // and active-job slots for the stall watchdog. All of it is gated
    // on telemetry being enabled and none of it touches the pulses, so
    // the threads=1 ≡ threads=N determinism contract is unaffected.
    let metrics_on = paqoc_telemetry::enabled();
    if metrics_on {
        paqoc_telemetry::add_gauge("exec.jobs_pending", jobs.len() as f64);
    }
    let active: Vec<Mutex<Option<ActiveJob>>> = (0..threads).map(|_| Mutex::new(None)).collect();
    let stall_count = AtomicU64::new(0);
    let watchdog_stop = AtomicBool::new(false);

    let yields: Vec<WorkerYield> = std::thread::scope(|scope| {
        if metrics_on {
            let active = &active;
            let stop = &watchdog_stop;
            let stall_count = &stall_count;
            scope.spawn(move || watchdog(jobs, active, opts, stop, stall_count));
        }
        let handles: Vec<_> = (0..threads)
            .map(|me| {
                let queues = &queues;
                let spent = &spent;
                let over_budget = &over_budget;
                let batch_cost = &batch_cost;
                let active = &active;
                scope.spawn(move || {
                    worker(
                        me,
                        jobs,
                        device,
                        factory,
                        table,
                        opts,
                        queues,
                        spent,
                        over_budget,
                        batch_cost,
                        batch_id,
                        &active[me],
                    )
                })
            })
            .collect();
        let yields = handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| WorkerYield {
                    done: Vec::new(),
                    pending: Vec::new(),
                    stats: WorkerStats::default(),
                    kernels: BTreeMap::new(),
                })
            })
            .collect();
        // Workers are done; release the watchdog (joined by the scope).
        watchdog_stop.store(true, Ordering::Release);
        yields
    });

    // Stitch worker results back into input order, then resolve the
    // dedup losers now that every in-flight generation has settled.
    let mut statuses = vec![JobStatus::Skipped(SkipReason::Deadline); jobs.len()];
    let mut pending = Vec::new();
    let mut workers = Vec::with_capacity(yields.len());
    let mut kernel_ns: BTreeMap<String, u64> = BTreeMap::new();
    let mut kernel_calls: BTreeMap<String, u64> = BTreeMap::new();
    for y in yields {
        for (idx, status) in y.done {
            statuses[idx] = status;
        }
        pending.extend(y.pending);
        workers.push(y.stats);
        for (name, (calls, ns)) in y.kernels {
            *kernel_calls.entry(name.to_string()).or_insert(0) += calls;
            *kernel_ns.entry(name.to_string()).or_insert(0) += ns;
        }
    }
    workers.sort_by_key(|w| w.worker);
    for idx in pending {
        let key = &jobs[idx].key;
        statuses[idx] = if let Some(est) = table.get(key) {
            JobStatus::Deduped(est)
        } else if table.is_quarantined(key) {
            JobStatus::Skipped(SkipReason::Quarantined)
        } else {
            JobStatus::Failed("deduped onto a generation that failed".to_string())
        };
    }

    let mut report = BatchReport {
        statuses,
        cost_spent_units: batch_cost.load(),
        wall: start.elapsed(),
        workers,
        stalls: stall_count.load(Ordering::Acquire) as usize,
        kernel_ns,
        kernel_calls,
        ..BatchReport::default()
    };
    report.tally();
    if paqoc_telemetry::enabled() {
        for w in &report.workers {
            paqoc_telemetry::observe("exec.worker.utilization", w.utilization());
            paqoc_telemetry::observe("exec.worker.busy_ms", w.busy_ns as f64 / 1e6);
            paqoc_telemetry::event!(
                "exec.worker",
                worker = w.worker as u64,
                jobs = w.jobs as u64,
                steals = w.steals as u64,
                busy_us = w.busy_ns / 1_000,
                idle_us = w.idle_ns / 1_000,
                steal_us = w.steal_ns / 1_000,
                wall_us = w.wall_ns / 1_000,
                utilization = w.utilization(),
            );
        }
        paqoc_telemetry::event!(
            "exec.batch",
            jobs = jobs.len() as u64,
            threads = threads as u64,
            generated = report.generated as u64,
            shard_hits = report.shard_hits as u64,
            store_hits = report.store_hits as u64,
            dedup_hits = report.dedup_hits as u64,
            failures = report.failures as u64,
            panics = report.panics as u64,
            skipped = report.skipped as u64,
            stalls = report.stalls as u64,
            cost_units = report.cost_spent_units,
            wall_us = report.wall.as_micros() as u64,
            kernel_us = report.kernel_ns.values().sum::<u64>() / 1_000,
        );
    }
    report
}

/// Hard ceiling on batch workers, matching
/// [`MAX_THREADS`](crate::MAX_THREADS).
const MAX_BATCH_THREADS: usize = 64;

/// How one pulled job resolved inside the worker loop.
enum Disposition {
    Done(JobStatus),
    /// In-flight dedup: resolved after the batch joins.
    Pending,
}

fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

#[allow(clippy::too_many_arguments)]
fn worker(
    me: usize,
    jobs: &[PulseJob],
    device: &Device,
    factory: &dyn PulseSourceFactory,
    table: &SharedPulseTable,
    opts: &ExecOptions,
    queues: &[Mutex<VecDeque<usize>>],
    spent: &AtomicCost,
    over_budget: &AtomicBool,
    batch_cost: &AtomicCost,
    batch_id: Option<u64>,
    active: &Mutex<Option<ActiveJob>>,
) -> WorkerYield {
    // Worker spans run on this thread's own span stack but are linked
    // to the batch span, so the merged journal keeps the tree intact.
    let _span = paqoc_telemetry::span_with_parent("exec.worker", batch_id);
    let metrics_on = paqoc_telemetry::enabled();
    // Kernel attribution rides on the thread-local probe totals, which
    // are monotone between flushes: snapshotting them before and after
    // a job (or the whole worker) gives this worker's share without
    // touching the global store or any lock.
    let probes_on = paqoc_telemetry::kernel_probes_enabled();
    let kernels_at_start = if probes_on {
        paqoc_telemetry::kernel_thread_totals()
    } else {
        BTreeMap::new()
    };
    let worker_start = Instant::now();
    let mut stats = WorkerStats {
        worker: me,
        ..WorkerStats::default()
    };
    let mut done = Vec::new();
    let mut pending = Vec::new();

    loop {
        // Acquisition time splits by provenance: own-deque pops (and
        // the final every-deque-is-empty scan) count as idle, stolen
        // pops as steal — so busy + idle + steal covers the loop.
        let acquire_start = Instant::now();
        let acquired = next_job(me, queues);
        let acquire_ns = elapsed_ns(acquire_start);
        let Some((idx, stolen)) = acquired else {
            stats.idle_ns += acquire_ns;
            break;
        };
        if stolen {
            stats.steals += 1;
            stats.steal_ns += acquire_ns;
        } else {
            stats.idle_ns += acquire_ns;
        }
        if metrics_on {
            paqoc_telemetry::add_gauge("exec.jobs_pending", -1.0);
            paqoc_telemetry::add_gauge("exec.workers_busy", 1.0);
        }
        let job_kernels_before = if metrics_on && probes_on {
            Some(paqoc_telemetry::kernel_thread_totals())
        } else {
            None
        };
        let busy_start = Instant::now();
        let disposition = run_one(
            me,
            idx,
            jobs,
            device,
            factory,
            table,
            opts,
            spent,
            over_budget,
            batch_cost,
            active,
        );
        let busy_ns = elapsed_ns(busy_start);
        stats.busy_ns += busy_ns;
        stats.jobs += 1;
        if metrics_on {
            paqoc_telemetry::add_gauge("exec.workers_busy", -1.0);
        }
        let job_kernel_ns = job_kernels_before
            .map(|before| kernel_delta(&before).values().map(|&(_, ns)| ns).sum())
            .unwrap_or(0u64);
        match disposition {
            Disposition::Done(status) => {
                if metrics_on {
                    paqoc_telemetry::event!(
                        "exec.job",
                        worker = me as u64,
                        arity = jobs[idx].qubits() as u64,
                        outcome = status_label(&status),
                        priority = jobs[idx].priority,
                        wall_us = busy_ns / 1_000,
                        kernel_us = job_kernel_ns / 1_000,
                    );
                }
                done.push((idx, status));
            }
            Disposition::Pending => pending.push(idx),
        }
    }
    stats.wall_ns = elapsed_ns(worker_start);
    let kernels = if probes_on {
        kernel_delta(&kernels_at_start)
    } else {
        BTreeMap::new()
    };
    WorkerYield {
        done,
        pending,
        stats,
        kernels,
    }
}

/// Per-kernel `(calls, ns)` growth of this thread's probe totals since
/// the `before` snapshot. Zero-growth kernels are dropped.
fn kernel_delta(before: &BTreeMap<&'static str, (u64, u64)>) -> BTreeMap<&'static str, (u64, u64)> {
    paqoc_telemetry::kernel_thread_totals()
        .into_iter()
        .filter_map(|(name, (calls, ns))| {
            let (c0, ns0) = before.get(name).copied().unwrap_or((0, 0));
            let delta = (calls.saturating_sub(c0), ns.saturating_sub(ns0));
            (delta != (0, 0)).then_some((name, delta))
        })
        .collect()
}

/// Executes one pulled job: shared deadline/budget gates, then the
/// claim protocol and (on a successful claim) the actual generation,
/// with the active-job slot published around the source call so the
/// stall watchdog can see it.
#[allow(clippy::too_many_arguments)]
fn run_one(
    me: usize,
    idx: usize,
    jobs: &[PulseJob],
    device: &Device,
    factory: &dyn PulseSourceFactory,
    table: &SharedPulseTable,
    opts: &ExecOptions,
    spent: &AtomicCost,
    over_budget: &AtomicBool,
    batch_cost: &AtomicCost,
    active: &Mutex<Option<ActiveJob>>,
) -> Disposition {
    let job = &jobs[idx];
    if let Some(deadline) = opts.deadline {
        if Instant::now() >= deadline {
            return Disposition::Done(JobStatus::Skipped(SkipReason::Deadline));
        }
    }
    if let Some(budget) = opts.cost_budget_units {
        if over_budget.load(Ordering::Acquire) || spent.load() >= budget {
            over_budget.store(true, Ordering::Release);
            return Disposition::Done(JobStatus::Skipped(SkipReason::CostBudget));
        }
    }
    let status = match table.claim(&job.key) {
        Claim::Hit(est, prov) => JobStatus::Hit(est, prov),
        Claim::Quarantined => JobStatus::Skipped(SkipReason::Quarantined),
        Claim::InFlight => {
            paqoc_telemetry::counter("exec.dedup", 1);
            paqoc_telemetry::event!(
                "exec.dedup",
                worker = me as u64,
                arity = job.qubits() as u64,
                key = job.key.as_str(),
            );
            return Disposition::Pending;
        }
        Claim::Claimed => {
            if let Ok(mut slot) = active.lock() {
                *slot = Some(ActiveJob {
                    idx,
                    started: Instant::now(),
                    flagged: false,
                });
            }
            let seed = opts.base_seed ^ job_seed(&job.key);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut source = factory.make(seed);
                source.try_generate(&job.group, device, job.target_fidelity, None)
            }));
            if let Ok(mut slot) = active.lock() {
                *slot = None;
            }
            match outcome {
                Ok(Ok(est)) => {
                    table.complete(&job.key, est);
                    spent.add(est.cost_units);
                    batch_cost.add(est.cost_units);
                    JobStatus::Generated(est)
                }
                Ok(Err(err)) => {
                    table.abandon(&job.key);
                    JobStatus::Failed(err.to_string())
                }
                Err(payload) => {
                    table.quarantine(&job.key);
                    let message = panic_message(payload.as_ref());
                    paqoc_telemetry::counter("exec.panic", 1);
                    paqoc_telemetry::event!(
                        "exec.panic",
                        worker = me as u64,
                        key = job.key.as_str(),
                        message = message.as_str(),
                    );
                    JobStatus::Panicked(message)
                }
            }
        }
    };
    Disposition::Done(status)
}

/// Pops the worker's own front, else steals a victim's back. The flag
/// is `true` when the job was stolen.
fn next_job(me: usize, queues: &[Mutex<VecDeque<usize>>]) -> Option<(usize, bool)> {
    if let Ok(mut own) = queues[me].lock() {
        if let Some(idx) = own.pop_front() {
            return Some((idx, false));
        }
    }
    for offset in 1..queues.len() {
        let victim = (me + offset) % queues.len();
        if let Ok(mut q) = queues[victim].lock() {
            if let Some(idx) = q.pop_back() {
                return Some((idx, true));
            }
        }
    }
    None
}

fn status_label(status: &JobStatus) -> &'static str {
    match status {
        JobStatus::Generated(_) => "generated",
        JobStatus::Hit(_, Provenance::Store) => "store_hit",
        JobStatus::Hit(_, _) => "shard_hit",
        JobStatus::Deduped(_) => "dedup",
        JobStatus::Failed(_) => "failed",
        JobStatus::Panicked(_) => "panicked",
        JobStatus::Skipped(SkipReason::Deadline) => "skipped_deadline",
        JobStatus::Skipped(SkipReason::CostBudget) => "skipped_budget",
        JobStatus::Skipped(SkipReason::Quarantined) => "skipped_quarantined",
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
