//! The work-stealing batch executor.
//!
//! [`run_batch`] takes a set of [`PulseJob`]s — independent gate groups
//! whose pulses a criticality-search iteration (or a benchmark sweep)
//! will need — and generates them across `threads` std workers. Jobs
//! are sorted by descending priority (predicted latency delta: the
//! biggest candidate first, mirroring the paper's top-k ordering) and
//! dealt round-robin into per-worker deques; a worker pops its own
//! front and steals from victims' backs, so long GRAPE runs start early
//! and stragglers are balanced without a global queue lock.
//!
//! Determinism: each generation uses a fresh source from the
//! [`PulseSourceFactory`](crate::PulseSourceFactory), seeded by
//! [`job_seed`](crate::job_seed) of the key, with no warm start — the
//! pulse is a pure function of the job, so `threads=1` and `threads=N`
//! produce bit-identical tables. Deadline/cost-budget runs are the
//! documented exception: which jobs get skipped depends on the
//! schedule, exactly as wall-clock deadlines already behave in the
//! sequential pipeline.
//!
//! Isolation: every generation runs under `catch_unwind`; a panic
//! quarantines the key in the [`SharedPulseTable`] (so a deterministic
//! crash fires once, not once per retry or worker) and the batch keeps
//! going. Budgets are shared atomically: once the cost ceiling or the
//! deadline is hit, all workers stop starting new generations.

use crate::factory::{job_seed, PulseSourceFactory};
use crate::shared_table::{Claim, Provenance, SharedPulseTable};
use paqoc_circuit::Instruction;
use paqoc_device::{Device, PulseEstimate};
use std::collections::{BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One unit of pulse-generation work.
#[derive(Clone, Debug)]
pub struct PulseJob {
    /// Cache key (the caller's `composite_key`); opaque to the
    /// executor, which shards, dedups and seeds by it.
    pub key: String,
    /// The gate group to realize (earlier instructions applied first).
    pub group: Vec<Instruction>,
    /// Scheduling priority — the predicted latency delta of the merge
    /// candidate this pulse serves. Higher runs earlier.
    pub priority: f64,
    /// Fidelity target passed to the source.
    pub target_fidelity: f64,
}

impl PulseJob {
    /// Number of distinct qubits the group touches.
    pub fn qubits(&self) -> usize {
        self.group
            .iter()
            .flat_map(|inst| inst.qubits().iter().copied())
            .collect::<BTreeSet<_>>()
            .len()
    }
}

/// Why a job was skipped without attempting generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkipReason {
    /// The shared deadline passed before the job started.
    Deadline,
    /// The shared cost budget was exhausted before the job started.
    CostBudget,
    /// The key is quarantined from an earlier panic.
    Quarantined,
}

/// Per-job outcome, aligned with the input job order.
#[derive(Clone, Debug, PartialEq)]
pub enum JobStatus {
    /// This worker generated the pulse.
    Generated(PulseEstimate),
    /// The pulse already existed (shard or persistent store).
    Hit(PulseEstimate, Provenance),
    /// Another worker generated it first; this is the dedup path.
    Deduped(PulseEstimate),
    /// Generation failed cleanly (typed source error); retriable.
    Failed(String),
    /// The source panicked; the key is now quarantined.
    Panicked(String),
    /// Not attempted (see [`SkipReason`]).
    Skipped(SkipReason),
}

impl JobStatus {
    /// The usable pulse, when the job produced or found one.
    pub fn estimate(&self) -> Option<PulseEstimate> {
        match self {
            JobStatus::Generated(est) | JobStatus::Deduped(est) | JobStatus::Hit(est, _) => {
                Some(*est)
            }
            _ => None,
        }
    }
}

/// Batch execution knobs.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Worker count (min 1). See [`effective_threads`](crate::effective_threads).
    pub threads: usize,
    /// Shared wall-clock deadline: jobs not started by then are skipped.
    pub deadline: Option<Instant>,
    /// Shared cost ceiling in source cost units; checked atomically
    /// before each generation starts.
    pub cost_budget_units: Option<f64>,
    /// Cost already spent before this batch (the pipeline's running
    /// total), charged against the same ceiling.
    pub cost_spent_units: f64,
    /// Seed folded (XOR) into every per-key job seed.
    pub base_seed: u64,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: 1,
            deadline: None,
            cost_budget_units: None,
            cost_spent_units: 0.0,
            base_seed: 0,
        }
    }
}

/// What a batch did, with per-job statuses in input order.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// One status per input job, same order.
    pub statuses: Vec<JobStatus>,
    /// Pulses generated by workers in this batch.
    pub generated: usize,
    /// Jobs resolved from a shard already holding the pulse.
    pub shard_hits: usize,
    /// Jobs resolved by persistent-store read-through.
    pub store_hits: usize,
    /// Jobs that raced an in-flight generation and reused its result.
    pub dedup_hits: usize,
    /// Clean generation failures.
    pub failures: usize,
    /// Panicking generations (keys now quarantined).
    pub panics: usize,
    /// Jobs skipped for deadline/budget/quarantine.
    pub skipped: usize,
    /// Cost units spent by this batch's generations.
    pub cost_spent_units: f64,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
}

impl BatchReport {
    fn tally(&mut self) {
        for status in &self.statuses {
            match status {
                JobStatus::Generated(_) => self.generated += 1,
                JobStatus::Hit(_, Provenance::Store) => self.store_hits += 1,
                JobStatus::Hit(_, _) => self.shard_hits += 1,
                JobStatus::Deduped(_) => self.dedup_hits += 1,
                JobStatus::Failed(_) => self.failures += 1,
                JobStatus::Panicked(_) => self.panics += 1,
                JobStatus::Skipped(_) => self.skipped += 1,
            }
        }
    }
}

/// Atomic f64 accumulator (bit-cast spins), for the shared cost tally.
struct AtomicCost(AtomicU64);

impl AtomicCost {
    fn new(v: f64) -> Self {
        AtomicCost(AtomicU64::new(v.to_bits()))
    }

    fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

struct WorkerYield {
    done: Vec<(usize, JobStatus)>,
    /// Jobs that hit the in-flight dedup path, resolved after the join.
    pending: Vec<usize>,
}

/// Runs `jobs` across `opts.threads` work-stealing workers against the
/// shared `table`. Statuses come back in input-job order; pulses land
/// in the table (and its write-behind buffer — call
/// [`SharedPulseTable::sync`] afterwards to persist).
pub fn run_batch(
    jobs: &[PulseJob],
    device: &Device,
    factory: &dyn PulseSourceFactory,
    table: &SharedPulseTable,
    opts: &ExecOptions,
) -> BatchReport {
    let start = Instant::now();
    let batch_span = paqoc_telemetry::span("exec.batch");
    let batch_id = batch_span.id();
    let threads = opts
        .threads
        .clamp(1, MAX_BATCH_THREADS)
        .min(jobs.len().max(1));

    // Priority-descending schedule, index-tie-broken so the order (and
    // with it the threads=1 run) is fully deterministic.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[b]
            .priority
            .partial_cmp(&jobs[a].priority)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (pos, idx) in order.into_iter().enumerate() {
        if let Ok(mut q) = queues[pos % threads].lock() {
            q.push_back(idx);
        }
    }

    let spent = AtomicCost::new(opts.cost_spent_units);
    let over_budget = AtomicBool::new(false);
    let batch_cost = AtomicCost::new(0.0);

    let yields: Vec<WorkerYield> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|me| {
                let queues = &queues;
                let spent = &spent;
                let over_budget = &over_budget;
                let batch_cost = &batch_cost;
                scope.spawn(move || {
                    worker(
                        me,
                        jobs,
                        device,
                        factory,
                        table,
                        opts,
                        queues,
                        spent,
                        over_budget,
                        batch_cost,
                        batch_id,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| WorkerYield {
                    done: Vec::new(),
                    pending: Vec::new(),
                })
            })
            .collect()
    });

    // Stitch worker results back into input order, then resolve the
    // dedup losers now that every in-flight generation has settled.
    let mut statuses = vec![JobStatus::Skipped(SkipReason::Deadline); jobs.len()];
    let mut pending = Vec::new();
    for y in yields {
        for (idx, status) in y.done {
            statuses[idx] = status;
        }
        pending.extend(y.pending);
    }
    for idx in pending {
        let key = &jobs[idx].key;
        statuses[idx] = if let Some(est) = table.get(key) {
            JobStatus::Deduped(est)
        } else if table.is_quarantined(key) {
            JobStatus::Skipped(SkipReason::Quarantined)
        } else {
            JobStatus::Failed("deduped onto a generation that failed".to_string())
        };
    }

    let mut report = BatchReport {
        statuses,
        cost_spent_units: batch_cost.load(),
        wall: start.elapsed(),
        ..BatchReport::default()
    };
    report.tally();
    if paqoc_telemetry::enabled() {
        paqoc_telemetry::event!(
            "exec.batch",
            jobs = jobs.len() as u64,
            threads = threads as u64,
            generated = report.generated as u64,
            shard_hits = report.shard_hits as u64,
            store_hits = report.store_hits as u64,
            dedup_hits = report.dedup_hits as u64,
            failures = report.failures as u64,
            panics = report.panics as u64,
            skipped = report.skipped as u64,
            cost_units = report.cost_spent_units,
            wall_us = report.wall.as_micros() as u64,
        );
    }
    report
}

/// Hard ceiling on batch workers, matching
/// [`MAX_THREADS`](crate::MAX_THREADS).
const MAX_BATCH_THREADS: usize = 64;

#[allow(clippy::too_many_arguments)]
fn worker(
    me: usize,
    jobs: &[PulseJob],
    device: &Device,
    factory: &dyn PulseSourceFactory,
    table: &SharedPulseTable,
    opts: &ExecOptions,
    queues: &[Mutex<VecDeque<usize>>],
    spent: &AtomicCost,
    over_budget: &AtomicBool,
    batch_cost: &AtomicCost,
    batch_id: Option<u64>,
) -> WorkerYield {
    // Worker spans run on this thread's own span stack but are linked
    // to the batch span, so the merged journal keeps the tree intact.
    let _span = paqoc_telemetry::span_with_parent("exec.worker", batch_id);
    let mut done = Vec::new();
    let mut pending = Vec::new();

    while let Some(idx) = next_job(me, queues) {
        let job = &jobs[idx];
        if let Some(deadline) = opts.deadline {
            if Instant::now() >= deadline {
                done.push((idx, JobStatus::Skipped(SkipReason::Deadline)));
                continue;
            }
        }
        if let Some(budget) = opts.cost_budget_units {
            if over_budget.load(Ordering::Acquire) || spent.load() >= budget {
                over_budget.store(true, Ordering::Release);
                done.push((idx, JobStatus::Skipped(SkipReason::CostBudget)));
                continue;
            }
        }
        let status = match table.claim(&job.key) {
            Claim::Hit(est, prov) => JobStatus::Hit(est, prov),
            Claim::Quarantined => JobStatus::Skipped(SkipReason::Quarantined),
            Claim::InFlight => {
                paqoc_telemetry::counter("exec.dedup", 1);
                paqoc_telemetry::event!(
                    "exec.dedup",
                    worker = me as u64,
                    arity = job.qubits() as u64,
                    key = job.key.as_str(),
                );
                pending.push(idx);
                continue;
            }
            Claim::Claimed => {
                let seed = opts.base_seed ^ job_seed(&job.key);
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut source = factory.make(seed);
                    source.try_generate(&job.group, device, job.target_fidelity, None)
                }));
                match outcome {
                    Ok(Ok(est)) => {
                        table.complete(&job.key, est);
                        spent.add(est.cost_units);
                        batch_cost.add(est.cost_units);
                        JobStatus::Generated(est)
                    }
                    Ok(Err(err)) => {
                        table.abandon(&job.key);
                        JobStatus::Failed(err.to_string())
                    }
                    Err(payload) => {
                        table.quarantine(&job.key);
                        let message = panic_message(payload.as_ref());
                        paqoc_telemetry::counter("exec.panic", 1);
                        paqoc_telemetry::event!(
                            "exec.panic",
                            worker = me as u64,
                            key = job.key.as_str(),
                            message = message.as_str(),
                        );
                        JobStatus::Panicked(message)
                    }
                }
            }
        };
        if paqoc_telemetry::enabled() {
            paqoc_telemetry::event!(
                "exec.job",
                worker = me as u64,
                arity = job.qubits() as u64,
                outcome = status_label(&status),
                priority = job.priority,
            );
        }
        done.push((idx, status));
    }
    WorkerYield { done, pending }
}

/// Pops the worker's own front, else steals a victim's back.
fn next_job(me: usize, queues: &[Mutex<VecDeque<usize>>]) -> Option<usize> {
    if let Ok(mut own) = queues[me].lock() {
        if let Some(idx) = own.pop_front() {
            return Some(idx);
        }
    }
    for offset in 1..queues.len() {
        let victim = (me + offset) % queues.len();
        if let Ok(mut q) = queues[victim].lock() {
            if let Some(idx) = q.pop_back() {
                return Some(idx);
            }
        }
    }
    None
}

fn status_label(status: &JobStatus) -> &'static str {
    match status {
        JobStatus::Generated(_) => "generated",
        JobStatus::Hit(_, Provenance::Store) => "store_hit",
        JobStatus::Hit(_, _) => "shard_hit",
        JobStatus::Deduped(_) => "dedup",
        JobStatus::Failed(_) => "failed",
        JobStatus::Panicked(_) => "panicked",
        JobStatus::Skipped(SkipReason::Deadline) => "skipped_deadline",
        JobStatus::Skipped(SkipReason::CostBudget) => "skipped_budget",
        JobStatus::Skipped(SkipReason::Quarantined) => "skipped_quarantined",
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
