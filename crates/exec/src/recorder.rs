//! The runtime flight recorder: a background thread that periodically
//! snapshots every telemetry gauge plus the process's CPU/RSS levels
//! into the event journal as [`METRICS_SAMPLE_EVENT`] records.
//!
//! Sampling runs **strictly off the job-execution path** — workers only
//! touch gauges (one small mutex op per job, and only when telemetry is
//! enabled), and the recorder reads them on its own thread at its own
//! cadence. It therefore cannot perturb the executor's determinism
//! contract: `threads = 1` and `threads = N` stay bit-identical with
//! the recorder on, because samples land in the journal (which is never
//! part of a stable dump), not in any pulse.
//!
//! The recorder is **off by default**. Turn it on with the
//! [`METRICS_ENV`] environment variable (`PAQOC_METRICS_MS=<interval>`,
//! milliseconds, minimum 1; `0`, empty or unparseable leaves it off)
//! via [`FlightRecorder::from_env`], or programmatically with
//! [`FlightRecorder::start`]. The handle is RAII: dropping it stops the
//! thread promptly (a condvar wakes the sleeper) after one final
//! sample, so short runs still record at least one data point.
//!
//! Each sample is one journal event named
//! [`METRICS_SAMPLE_EVENT`] with numeric fields:
//!
//! * `tick` — sample index since the recorder started;
//! * `cpu_user_ms` / `cpu_sys_ms` / `rss_bytes` / `vsize_bytes` /
//!   `os_threads` — from [`paqoc_telemetry::resources::sample`]
//!   (omitted on platforms without procfs);
//! * one field per live gauge, keyed by the gauge's own name
//!   (`exec.jobs_pending`, `exec.workers_busy`, …).
//!
//! The Chrome-trace exporter renders each field as its own counter
//! timeline (`"ph":"C"`), so Perfetto draws live metric graphs next to
//! the span slices.

use paqoc_telemetry::{resources, FieldValue, METRICS_SAMPLE_EVENT};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment knob naming the sampling interval in milliseconds.
/// Absent, empty, `0` or unparseable means the recorder stays off.
pub const METRICS_ENV: &str = "PAQOC_METRICS_MS";

/// Shortest accepted sampling interval; smaller requests clamp here so
/// a typo'd `PAQOC_METRICS_MS=0.5` cannot spin a core.
pub const MIN_INTERVAL: Duration = Duration::from_millis(1);

/// Parses [`METRICS_ENV`] into a sampling interval, if one is set.
pub fn interval_from_env() -> Option<Duration> {
    let raw = std::env::var(METRICS_ENV).ok()?;
    let ms = raw.trim().parse::<u64>().ok().filter(|&ms| ms > 0)?;
    Some(Duration::from_millis(ms).max(MIN_INTERVAL))
}

/// RAII handle over the background sampling thread. See the module
/// docs; construct with [`FlightRecorder::from_env`] (honours
/// `PAQOC_METRICS_MS`) or [`FlightRecorder::start`].
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Option<Inner>,
}

#[derive(Debug)]
struct Inner {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: JoinHandle<()>,
    interval: Duration,
    samples: Arc<AtomicU64>,
}

impl FlightRecorder {
    /// Starts the recorder when [`METRICS_ENV`] names an interval;
    /// otherwise returns the inert [`FlightRecorder::disabled`] handle.
    pub fn from_env() -> FlightRecorder {
        match interval_from_env() {
            Some(interval) => FlightRecorder::start(interval),
            None => FlightRecorder::disabled(),
        }
    }

    /// A no-op handle: no thread, no samples, `Drop` does nothing.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder { inner: None }
    }

    /// Spawns the sampling thread at the given cadence (clamped to
    /// [`MIN_INTERVAL`]). Samples only record while telemetry
    /// collection is enabled — the recorder itself never turns it on.
    pub fn start(interval: Duration) -> FlightRecorder {
        let interval = interval.max(MIN_INTERVAL);
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let samples = Arc::new(AtomicU64::new(0));
        let thread_stop = Arc::clone(&stop);
        let thread_samples = Arc::clone(&samples);
        let handle = std::thread::Builder::new()
            .name("paqoc-flight-recorder".to_string())
            .spawn(move || {
                let (lock, cvar) = &*thread_stop;
                let mut tick = 0u64;
                loop {
                    record_sample(tick);
                    thread_samples.store(tick + 1, Ordering::Release);
                    tick += 1;
                    let stopped = lock.lock().unwrap_or_else(|p| p.into_inner());
                    if *stopped {
                        break;
                    }
                    let (stopped, _) = cvar
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(|p| p.into_inner());
                    if *stopped {
                        // One final sample so the trace's last data
                        // point reflects the end state of the run.
                        record_sample(tick);
                        thread_samples.store(tick + 1, Ordering::Release);
                        break;
                    }
                }
            });
        match handle {
            Ok(handle) => FlightRecorder {
                inner: Some(Inner {
                    stop,
                    handle,
                    interval,
                    samples,
                }),
            },
            // Thread spawn can only fail under resource exhaustion;
            // observability must never take the process down with it.
            Err(_) => FlightRecorder::disabled(),
        }
    }

    /// `true` when a sampling thread is live.
    pub fn is_running(&self) -> bool {
        self.inner.is_some()
    }

    /// The sampling cadence, when running.
    pub fn interval(&self) -> Option<Duration> {
        self.inner.as_ref().map(|i| i.interval)
    }

    /// Samples recorded so far (journal events emitted while telemetry
    /// was enabled; ticks still count while it is disabled).
    pub fn samples(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.samples.load(Ordering::Acquire))
            .unwrap_or(0)
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        {
            let (lock, cvar) = &*inner.stop;
            let mut stopped = lock.lock().unwrap_or_else(|p| p.into_inner());
            *stopped = true;
            cvar.notify_all();
        }
        let _ = inner.handle.join();
    }
}

/// Emits one `metrics.sample` journal event: tick, process resources
/// (when procfs exists) and every live gauge. No-op while telemetry
/// collection is disabled.
fn record_sample(tick: u64) {
    if !paqoc_telemetry::enabled() {
        return;
    }
    let gauges = paqoc_telemetry::gauges();
    let mut fields: Vec<(&str, FieldValue)> = Vec::with_capacity(gauges.len() + 6);
    fields.push(("tick", FieldValue::U64(tick)));
    let res = resources::sample();
    if let Some(r) = &res {
        fields.push(("cpu_user_ms", FieldValue::U64(r.cpu_user_ms)));
        fields.push(("cpu_sys_ms", FieldValue::U64(r.cpu_sys_ms)));
        fields.push(("rss_bytes", FieldValue::U64(r.rss_bytes)));
        fields.push(("vsize_bytes", FieldValue::U64(r.vsize_bytes)));
        fields.push(("os_threads", FieldValue::U64(r.threads)));
    }
    for (name, value) in &gauges {
        fields.push((name.as_str(), FieldValue::F64(*value)));
    }
    paqoc_telemetry::event(METRICS_SAMPLE_EVENT, &fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let rec = FlightRecorder::disabled();
        assert!(!rec.is_running());
        assert_eq!(rec.interval(), None);
        assert_eq!(rec.samples(), 0);
        drop(rec); // must not hang or panic
    }

    #[test]
    fn env_parsing_rejects_zero_and_garbage() {
        // interval_from_env reads the real environment; exercise the
        // clamp/parse logic through start() instead of mutating env.
        assert!(FlightRecorder::start(Duration::from_nanos(1))
            .interval()
            .is_some_and(|i| i >= MIN_INTERVAL));
    }

    #[test]
    fn recorder_samples_and_stops_promptly() {
        let rec = FlightRecorder::start(Duration::from_millis(2));
        assert!(rec.is_running());
        while rec.samples() < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let t = std::time::Instant::now();
        drop(rec);
        assert!(
            t.elapsed() < Duration::from_millis(500),
            "drop must stop the thread promptly"
        );
    }
}
