//! Bounded, multi-tenant fair-share work queue.
//!
//! The admission-control core of the resident compilation service
//! (`paqoc-serve`), kept here next to the executor's other scheduling
//! machinery so any batch front-end can reuse it. One [`FairQueue`]
//! holds a bounded priority deque **per tenant** plus a round-robin
//! rotation across tenants:
//!
//! * **Admission is reject-not-buffer.** [`FairQueue::push`] fails with
//!   a typed [`PushError`] the moment a tenant's deque (or the global
//!   cap, or the tenant-count cap) is full. Nothing is ever buffered
//!   unboundedly — a hostile or runaway client sees `Overloaded`
//!   instead of inflating the process's memory.
//! * **Fair share across tenants.** [`FairQueue::pop`] serves tenants
//!   round-robin: each pop takes the *front* (highest-priority) entry of
//!   the next tenant in rotation, so one tenant flooding its own deque
//!   cannot starve the others. Within a tenant, entries order by
//!   priority (descending, FIFO-stable on ties) — the same
//!   priority-deque discipline [`run_batch`](crate::run_batch) uses for
//!   pulse jobs.
//! * **Drain is a one-way valve.** [`FairQueue::drain`] permanently
//!   rejects new pushes with [`PushError::Draining`] while letting
//!   consumers keep popping; once the queue runs dry every pop answers
//!   [`Pop::Drained`], which is the workers' signal to exit.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Capacity limits for a [`FairQueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueConfig {
    /// Maximum queued entries per tenant.
    pub per_tenant_cap: usize,
    /// Maximum queued entries across all tenants.
    pub total_cap: usize,
    /// Maximum number of distinct tenants with queued work. Tenants
    /// whose deques empty out are forgotten, so this bounds *live*
    /// tenants, not all names ever seen.
    pub max_tenants: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            per_tenant_cap: 64,
            total_cap: 1024,
            max_tenants: 64,
        }
    }
}

/// Why a push was rejected. Every variant carries the numbers a typed
/// overload response needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The tenant's own deque is full.
    TenantFull {
        /// Entries the tenant already has queued.
        depth: usize,
        /// The per-tenant cap.
        cap: usize,
    },
    /// The whole queue is full.
    QueueFull {
        /// Entries queued across all tenants.
        depth: usize,
        /// The global cap.
        cap: usize,
    },
    /// Admitting this tenant would exceed the live-tenant cap.
    TooManyTenants {
        /// Live tenants right now.
        tenants: usize,
        /// The tenant cap.
        cap: usize,
    },
    /// The queue is draining; no new work is admitted.
    Draining,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::TenantFull { depth, cap } => {
                write!(f, "tenant queue full ({depth} of {cap})")
            }
            PushError::QueueFull { depth, cap } => write!(f, "queue full ({depth} of {cap})"),
            PushError::TooManyTenants { tenants, cap } => {
                write!(f, "too many live tenants ({tenants} of {cap})")
            }
            PushError::Draining => write!(f, "queue is draining"),
        }
    }
}

/// Outcome of a [`FairQueue::pop`].
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// The next entry, fair-share order.
    Item(T),
    /// Nothing arrived within the timeout; the queue is still open.
    TimedOut,
    /// The queue is draining and empty — consumers should exit.
    Drained,
}

struct Entry<T> {
    priority: f64,
    seq: u64,
    item: T,
}

struct State<T> {
    tenants: HashMap<String, VecDeque<Entry<T>>>,
    /// Tenants with non-empty deques, in service order.
    rotation: VecDeque<String>,
    total: usize,
    seq: u64,
    draining: bool,
}

/// Bounded multi-tenant fair-share queue (see the module docs).
pub struct FairQueue<T> {
    cfg: QueueConfig,
    state: Mutex<State<T>>,
    cv: Condvar,
}

/// Recovers a poisoned queue lock: state mutations are short and
/// panic-free, so the data is consistent even if a holder died.
fn relock<'a, T>(m: &'a Mutex<State<T>>) -> std::sync::MutexGuard<'a, State<T>> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl<T> FairQueue<T> {
    /// Creates an empty queue with the given capacity limits (caps are
    /// floored at 1).
    pub fn new(cfg: QueueConfig) -> Self {
        FairQueue {
            cfg: QueueConfig {
                per_tenant_cap: cfg.per_tenant_cap.max(1),
                total_cap: cfg.total_cap.max(1),
                max_tenants: cfg.max_tenants.max(1),
            },
            state: Mutex::new(State {
                tenants: HashMap::new(),
                rotation: VecDeque::new(),
                total: 0,
                seq: 0,
                draining: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// The configured capacity limits.
    pub fn config(&self) -> QueueConfig {
        self.cfg
    }

    /// Admits one entry for `tenant`, ordered by `priority` (descending,
    /// FIFO-stable on ties) within the tenant's deque. Returns the
    /// tenant's queue depth after the push, or a typed rejection —
    /// nothing is buffered beyond the configured caps.
    pub fn push(&self, tenant: &str, priority: f64, item: T) -> Result<usize, PushError> {
        let mut state = relock(&self.state);
        if state.draining {
            return Err(PushError::Draining);
        }
        if state.total >= self.cfg.total_cap {
            return Err(PushError::QueueFull {
                depth: state.total,
                cap: self.cfg.total_cap,
            });
        }
        if !state.tenants.contains_key(tenant) && state.tenants.len() >= self.cfg.max_tenants {
            return Err(PushError::TooManyTenants {
                tenants: state.tenants.len(),
                cap: self.cfg.max_tenants,
            });
        }
        state.seq += 1;
        let seq = state.seq;
        let deque = state.tenants.entry(tenant.to_string()).or_default();
        if deque.len() >= self.cfg.per_tenant_cap {
            return Err(PushError::TenantFull {
                depth: deque.len(),
                cap: self.cfg.per_tenant_cap,
            });
        }
        let was_empty = deque.is_empty();
        // Priority-descending insertion point, stable on ties: after the
        // last entry with priority >= the new one.
        let pos = deque
            .iter()
            .position(|e| e.priority < priority)
            .unwrap_or(deque.len());
        deque.insert(
            pos,
            Entry {
                priority,
                seq,
                item,
            },
        );
        let depth = deque.len();
        if was_empty {
            state.rotation.push_back(tenant.to_string());
        }
        state.total += 1;
        self.cv.notify_one();
        Ok(depth)
    }

    /// Takes the next entry in fair-share order, waiting up to `timeout`
    /// for one to arrive. `Drained` means the queue is closed *and*
    /// empty — the consumer's exit signal.
    pub fn pop(&self, timeout: Duration) -> Pop<T> {
        let deadline = Instant::now() + timeout;
        let mut state = relock(&self.state);
        loop {
            if let Some(tenant) = state.rotation.pop_front() {
                let mut emptied = false;
                let entry = state.tenants.get_mut(&tenant).and_then(|deque| {
                    let entry = deque.pop_front();
                    emptied = deque.is_empty();
                    entry
                });
                if emptied {
                    // Forget dry tenants so `max_tenants` bounds live
                    // tenants, not every name a hostile client invents.
                    state.tenants.remove(&tenant);
                } else {
                    state.rotation.push_back(tenant);
                }
                if let Some(entry) = entry {
                    state.total -= 1;
                    let _ = entry.seq;
                    return Pop::Item(entry.item);
                }
                continue;
            }
            if state.draining {
                return Pop::Drained;
            }
            let now = Instant::now();
            if now >= deadline {
                return Pop::TimedOut;
            }
            let (next, timed_out) = self
                .cv
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|poison| poison.into_inner());
            state = next;
            if timed_out.timed_out() && state.rotation.is_empty() && !state.draining {
                return Pop::TimedOut;
            }
        }
    }

    /// Closes the queue: every future push answers
    /// [`PushError::Draining`], pops keep serving what was admitted, and
    /// once empty every pop answers [`Pop::Drained`]. Irreversible.
    pub fn drain(&self) {
        let mut state = relock(&self.state);
        state.draining = true;
        self.cv.notify_all();
    }

    /// `true` once [`FairQueue::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        relock(&self.state).draining
    }

    /// Entries queued across all tenants.
    pub fn len(&self) -> usize {
        relock(&self.state).total
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of tenants with queued work.
    pub fn tenant_count(&self) -> usize {
        relock(&self.state).tenants.len()
    }

    /// Entries queued for one tenant.
    pub fn depth(&self, tenant: &str) -> usize {
        relock(&self.state)
            .tenants
            .get(tenant)
            .map(VecDeque::len)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_millis(200);

    #[test]
    fn pop_serves_tenants_round_robin() {
        let q: FairQueue<u32> = FairQueue::new(QueueConfig::default());
        // Tenant a floods first; tenant b arrives later with two items.
        for i in 0..4 {
            q.push("a", 0.0, i).expect("push a");
        }
        q.push("b", 0.0, 100).expect("push b");
        q.push("b", 0.0, 101).expect("push b");
        let mut order = Vec::new();
        while let Pop::Item(v) = q.pop(Duration::from_millis(10)) {
            order.push(v);
        }
        // a, b alternate until b runs dry, then a finishes.
        assert_eq!(order, vec![0, 100, 1, 101, 2, 3]);
    }

    #[test]
    fn priority_orders_within_a_tenant_fifo_on_ties() {
        let q: FairQueue<&str> = FairQueue::new(QueueConfig::default());
        q.push("t", 1.0, "low-first").expect("push");
        q.push("t", 5.0, "high").expect("push");
        q.push("t", 1.0, "low-second").expect("push");
        assert_eq!(q.pop(TICK), Pop::Item("high"));
        assert_eq!(q.pop(TICK), Pop::Item("low-first"));
        assert_eq!(q.pop(TICK), Pop::Item("low-second"));
    }

    #[test]
    fn per_tenant_cap_rejects_with_depth() {
        let q: FairQueue<u32> = FairQueue::new(QueueConfig {
            per_tenant_cap: 2,
            ..QueueConfig::default()
        });
        q.push("t", 0.0, 1).expect("push");
        q.push("t", 0.0, 2).expect("push");
        assert_eq!(
            q.push("t", 0.0, 3),
            Err(PushError::TenantFull { depth: 2, cap: 2 })
        );
        // Another tenant is unaffected.
        assert_eq!(q.push("u", 0.0, 4), Ok(1));
    }

    #[test]
    fn global_and_tenant_count_caps_hold() {
        let q: FairQueue<u32> = FairQueue::new(QueueConfig {
            per_tenant_cap: 8,
            total_cap: 3,
            max_tenants: 2,
        });
        q.push("a", 0.0, 1).expect("push");
        q.push("b", 0.0, 2).expect("push");
        assert_eq!(
            q.push("c", 0.0, 3),
            Err(PushError::TooManyTenants { tenants: 2, cap: 2 })
        );
        q.push("a", 0.0, 4).expect("push");
        assert_eq!(
            q.push("b", 0.0, 5),
            Err(PushError::QueueFull { depth: 3, cap: 3 })
        );
    }

    #[test]
    fn dry_tenants_are_forgotten() {
        let q: FairQueue<u32> = FairQueue::new(QueueConfig {
            max_tenants: 1,
            ..QueueConfig::default()
        });
        q.push("a", 0.0, 1).expect("push");
        assert!(matches!(
            q.push("b", 0.0, 2),
            Err(PushError::TooManyTenants { .. })
        ));
        assert_eq!(q.pop(TICK), Pop::Item(1));
        assert_eq!(q.tenant_count(), 0, "drained tenant must be forgotten");
        assert_eq!(q.push("b", 0.0, 2), Ok(1));
    }

    #[test]
    fn drain_rejects_pushes_serves_backlog_then_signals() {
        let q: FairQueue<u32> = FairQueue::new(QueueConfig::default());
        q.push("t", 0.0, 1).expect("push");
        q.drain();
        assert_eq!(q.push("t", 0.0, 2), Err(PushError::Draining));
        assert_eq!(q.pop(TICK), Pop::Item(1), "backlog still served");
        assert_eq!(q.pop(TICK), Pop::Drained);
        assert_eq!(q.pop(TICK), Pop::Drained, "drained is sticky");
    }

    #[test]
    fn pop_times_out_on_an_open_empty_queue() {
        let q: FairQueue<u32> = FairQueue::new(QueueConfig::default());
        let t0 = Instant::now();
        assert_eq!(q.pop(Duration::from_millis(20)), Pop::TimedOut);
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn drain_wakes_blocked_consumers() {
        let q = std::sync::Arc::new(FairQueue::<u32>::new(QueueConfig::default()));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.drain();
        assert_eq!(h.join().expect("join"), Pop::Drained);
    }

    #[test]
    fn concurrent_pushers_and_poppers_conserve_items() {
        let q = std::sync::Arc::new(FairQueue::<u64>::new(QueueConfig {
            per_tenant_cap: 1024,
            total_cap: 4096,
            max_tenants: 8,
        }));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                let mut accepted = 0u64;
                for i in 0..200u64 {
                    if q.push(&format!("t{t}"), (i % 3) as f64, t * 1000 + i)
                        .is_ok()
                    {
                        accepted += 1;
                    }
                }
                accepted
            }));
        }
        let mut poppers = Vec::new();
        for _ in 0..3 {
            let q = q.clone();
            poppers.push(std::thread::spawn(move || {
                let mut got = 0u64;
                loop {
                    match q.pop(Duration::from_millis(50)) {
                        Pop::Item(_) => got += 1,
                        Pop::Drained => break,
                        Pop::TimedOut => continue,
                    }
                }
                got
            }));
        }
        let pushed: u64 = handles.into_iter().map(|h| h.join().expect("push")).sum();
        q.drain();
        let popped: u64 = poppers.into_iter().map(|h| h.join().expect("pop")).sum();
        assert_eq!(pushed, popped, "every admitted item must be served");
        assert_eq!(q.len(), 0);
    }
}
