//! [`GrapeSource`]: the real-numerics implementation of [`PulseSource`].
//!
//! Wraps the optimizer and the minimum-duration search behind the same
//! interface as the analytic model, adding the paper's two compile-time
//! accelerations: an exact pulse cache (identical customized gates are
//! generated once) and similarity-based warm starting (a previously
//! generated pulse whose unitary is close to the new target seeds the
//! optimizer, à la AccQOC).

use crate::duration::minimize_duration;
use crate::optimizer::{GrapeOptions, Pulse};
use paqoc_circuit::{combined_unitary, Instruction};
use paqoc_device::{AnalyticModel, Device, PulseEstimate, PulseGenError, PulseSource};
use paqoc_math::{phase_aligned_distance, Matrix};
use std::collections::BTreeSet;
use std::collections::HashMap;

/// A cached generated pulse and its realized quality.
#[derive(Clone, Debug)]
struct CacheEntry {
    target: Matrix,
    pulse: Pulse,
    estimate: PulseEstimate,
}

/// Pulse generation through real GRAPE optimization.
///
/// # Unwind safety
///
/// `PulseTable` runs every source call under a `catch_unwind`
/// supervisor, so this type must stay consistent if an optimization
/// panics mid-call (the `optimize` dimension/steps asserts, or any
/// numerical bug below them). The audit invariants:
///
/// * the pulse cache is only inserted into *after* a fully successful
///   duration search — an unwind can never leave a partial or invalid
///   [`CacheEntry`] behind;
/// * `prior` ([`AnalyticModel`]) and `opts` are never mutated by
///   `generate`/`try_generate`, so there is no torn intermediate state;
/// * telemetry counters incremented before an unwind (`grape.retries`,
///   `grape.cache_misses`) merely over-count attempts, which is the
///   correct reading — the attempt did happen.
///
/// Keep it that way: any future mutable state added here must be
/// written only on the success path (or be idempotent), or the
/// supervisor's quarantine guarantee breaks.
///
/// # Examples
///
/// ```
/// use paqoc_grape::GrapeSource;
/// use paqoc_device::{Device, PulseSource};
/// use paqoc_circuit::{GateKind, Instruction};
///
/// let dev = Device::line(2);
/// let mut src = GrapeSource::fast();
/// let x = Instruction::new(GateKind::X, vec![0], vec![]);
/// let pulse = src.generate(&[x], &dev, 0.99, None);
/// assert!(pulse.fidelity >= 0.99);
/// ```
#[derive(Debug)]
pub struct GrapeSource {
    opts: GrapeOptions,
    prior: AnalyticModel,
    cache: HashMap<String, CacheEntry>,
    /// Unitary distance below which a cached pulse seeds the optimizer.
    similarity_threshold: f64,
    /// Extra escalated attempts after a failed duration search.
    max_retries: usize,
}

impl Default for GrapeSource {
    fn default() -> Self {
        GrapeSource::new(GrapeOptions::default())
    }
}

/// Builds fresh per-job [`GrapeSource`]s for the parallel executor.
///
/// Each [`make`](paqoc_exec::PulseSourceFactory::make) call returns a
/// new source whose RNG seed is `opts.seed ^ seed` — the executor
/// passes [`paqoc_exec::job_seed`] of the job's composite key, so a
/// pulse is a pure function of `(key, group, device, options)` no
/// matter which worker runs it or in what order. The per-job source
/// starts with an empty pulse cache, deliberately: warm-starting from
/// whatever happened to finish earlier on another thread is exactly the
/// schedule dependence the determinism contract forbids.
#[derive(Clone, Debug)]
pub struct GrapeFactory {
    opts: GrapeOptions,
    max_retries: usize,
}

impl Default for GrapeFactory {
    fn default() -> Self {
        GrapeFactory::new(GrapeOptions::default())
    }
}

impl GrapeFactory {
    /// Creates a factory stamping sources with the given options.
    pub fn new(opts: GrapeOptions) -> Self {
        GrapeFactory {
            opts,
            max_retries: 2,
        }
    }

    /// A factory matching [`GrapeSource::fast`] (test/CI speed).
    pub fn fast() -> Self {
        GrapeFactory::new(GrapeOptions {
            step_ns: 0.5,
            max_iters: 250,
            restarts: 2,
            target_fidelity: 0.99,
            ..GrapeOptions::default()
        })
    }

    /// Escalated retries per source (see [`GrapeSource::with_retries`]).
    pub fn with_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }
}

impl paqoc_exec::PulseSourceFactory for GrapeFactory {
    fn make(&self, seed: u64) -> Box<dyn PulseSource + Send> {
        Box::new(
            GrapeSource::new(GrapeOptions {
                seed: self.opts.seed ^ seed,
                ..self.opts
            })
            .with_retries(self.max_retries),
        )
    }

    fn name(&self) -> &'static str {
        "grape"
    }
}

impl GrapeSource {
    /// Creates a source with the given optimizer options.
    pub fn new(opts: GrapeOptions) -> Self {
        GrapeSource {
            opts,
            prior: AnalyticModel::new(),
            cache: HashMap::new(),
            similarity_threshold: 0.6,
            max_retries: 2,
        }
    }

    /// Sets how many escalated retries follow a failed duration search
    /// before [`PulseSource::try_generate`] gives up (default 2). Each
    /// retry adds a restart, grows the iteration budget by 50% (capped
    /// at 4× the base), and perturbs the seed.
    pub fn with_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// A configuration tuned for test/CI speed: coarser steps, fewer
    /// iterations, 0.99 default target.
    pub fn fast() -> Self {
        GrapeSource::new(GrapeOptions {
            step_ns: 0.5,
            max_iters: 250,
            restarts: 2,
            target_fidelity: 0.99,
            ..GrapeOptions::default()
        })
    }

    /// Number of distinct pulses generated so far.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The cached pulse for a previously generated group, if any.
    pub fn cached_pulse(&self, group: &[Instruction]) -> Option<&Pulse> {
        let qubits = group_qubits(group);
        let key = signature(group, &qubits);
        self.cache.get(&key).map(|e| &e.pulse)
    }

    /// Finds the most similar cached pulse for warm starting.
    fn similar_pulse(&self, target: &Matrix, num_channels: usize) -> Option<&Pulse> {
        self.cache
            .values()
            .filter(|e| {
                e.target.rows() == target.rows() && e.pulse.channel_names.len() == num_channels
            })
            .map(|e| (phase_aligned_distance(&e.target, target), e))
            .filter(|(d, _)| *d < self.similarity_threshold)
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, e)| &e.pulse)
    }
}

/// Sorted unique qubits of a group.
fn group_qubits(group: &[Instruction]) -> Vec<usize> {
    let set: BTreeSet<usize> = group
        .iter()
        .flat_map(|i| i.qubits().iter().copied())
        .collect();
    set.into_iter().collect()
}

/// Relative-frame structural signature of a group (cache key).
fn signature(group: &[Instruction], qubits: &[usize]) -> String {
    let local = |q: usize| qubits.iter().position(|&p| p == q).unwrap_or(usize::MAX);
    group
        .iter()
        .map(|inst| {
            let qs: Vec<String> = inst
                .qubits()
                .iter()
                .map(|&q| local(q).to_string())
                .collect();
            format!("{}:{}", inst.label(), qs.join(","))
        })
        .collect::<Vec<_>>()
        .join(";")
}

impl PulseSource for GrapeSource {
    /// Legacy infallible entry: runs the same degradation ladder as
    /// [`PulseSource::try_generate`] and, only if every escalated
    /// attempt fails, reports the step-cap sentinel (`fidelity: 0.0`,
    /// latency at the cap) so direct callers can see and reject the
    /// candidate. Pipeline code should prefer `try_generate`, which
    /// surfaces the failure as a typed error instead.
    fn generate(
        &mut self,
        group: &[Instruction],
        device: &Device,
        target_fidelity: f64,
        warm_start: Option<f64>,
    ) -> PulseEstimate {
        match self.try_generate(group, device, target_fidelity, warm_start) {
            Ok(est) => est,
            Err(_) => {
                let qubits = group_qubits(group);
                let d = device.controls_for(&qubits).dim() as f64;
                let latency_ns = 1024.0 * self.opts.step_ns;
                PulseEstimate {
                    latency_ns,
                    latency_dt: device.spec().ns_to_dt(latency_ns),
                    fidelity: 0.0,
                    cost_units: 1024.0 * self.opts.max_iters as f64 * d.powi(3) / 1.0e6,
                }
            }
        }
    }

    /// The degradation ladder's first rung: on a failed duration search,
    /// retry with one more restart, a 50%-larger iteration budget
    /// (bounded at 4× the base), and a perturbed seed — GRAPE failures
    /// are often basin-of-attraction accidents that a fresh start
    /// escapes. Successful estimates are cached; failures never are.
    fn try_generate(
        &mut self,
        group: &[Instruction],
        device: &Device,
        target_fidelity: f64,
        warm_start: Option<f64>,
    ) -> Result<PulseEstimate, PulseGenError> {
        let qubits = group_qubits(group);
        let key = signature(group, &qubits);
        if let Some(entry) = self.cache.get(&key) {
            // Identical customized gate: reuse at zero cost.
            paqoc_telemetry::counter("grape.cache_hits", 1);
            let mut est = entry.estimate;
            est.cost_units = 0.0;
            return Ok(est);
        }
        paqoc_telemetry::counter("grape.cache_misses", 1);

        let target = combined_unitary(group, &qubits);
        let controls = device.controls_for(&qubits);

        let prior_ns = self
            .prior
            .generate(group, device, target_fidelity, None)
            .latency_ns;
        let initial_steps = ((prior_ns / self.opts.step_ns).ceil() as usize).max(2);

        let seed_pulse = if warm_start.is_some() {
            self.similar_pulse(&target, controls.channels.len())
                .cloned()
        } else {
            None
        };
        if seed_pulse.is_some() {
            paqoc_telemetry::counter("grape.warm_starts", 1);
        }

        let d = controls.dim() as f64;
        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                paqoc_telemetry::counter("grape.retries", 1);
            }
            let escalated = (self.opts.max_iters as f64 * (1.0 + 0.5 * attempt as f64)) as usize;
            let opts = GrapeOptions {
                target_fidelity,
                restarts: self.opts.restarts + attempt,
                max_iters: escalated.min(self.opts.max_iters * 4),
                seed: self
                    .opts
                    .seed
                    .wrapping_add((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ..self.opts
            };
            if let Some(search) = minimize_duration(
                &target,
                &controls,
                &opts,
                initial_steps,
                seed_pulse.as_ref(),
            ) {
                let latency_ns = search.result.pulse.duration_ns();
                let estimate = PulseEstimate {
                    latency_ns,
                    latency_dt: device.spec().ns_to_dt(latency_ns),
                    fidelity: search.result.fidelity,
                    cost_units: search.total_iterations as f64 * search.steps as f64 * d.powi(3)
                        / 1.0e6,
                };
                // Per-call convergence summary: how hard this gate was.
                paqoc_telemetry::event!(
                    "grape.call",
                    gates = group.len() as u64,
                    qubits = qubits.len() as u64,
                    attempts = (attempt + 1) as u64,
                    iterations = search.total_iterations as u64,
                    steps = search.steps as u64,
                    fidelity = search.result.fidelity,
                    latency_ns = latency_ns,
                    warm_started = seed_pulse.is_some(),
                );
                self.cache.insert(
                    key,
                    CacheEntry {
                        target,
                        pulse: search.result.pulse,
                        estimate,
                    },
                );
                return Ok(estimate);
            }
            paqoc_telemetry::counter("grape.duration_search_failures", 1);
        }
        Err(PulseGenError::Convergence {
            achieved: 0.0,
            target: target_fidelity,
        })
    }

    fn typical_latency_ns(&self, num_qubits: usize, device: &Device) -> f64 {
        self.prior.typical_latency_ns(num_qubits, device)
    }

    fn name(&self) -> &'static str {
        "grape"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_circuit::GateKind;

    fn inst(gate: GateKind, qubits: &[usize]) -> Instruction {
        Instruction::new(gate, qubits.to_vec(), vec![])
    }

    #[test]
    fn generates_single_qubit_pulse() {
        let dev = Device::line(2);
        let mut src = GrapeSource::fast();
        let e = src.generate(&[inst(GateKind::H, &[0])], &dev, 0.99, None);
        assert!(e.fidelity >= 0.99, "{e:?}");
        assert!(e.latency_dt > 0);
        assert!(e.cost_units > 0.0);
    }

    #[test]
    fn cache_hit_costs_nothing() {
        let dev = Device::line(2);
        let mut src = GrapeSource::fast();
        let g = [inst(GateKind::H, &[0])];
        let first = src.generate(&g, &dev, 0.99, None);
        let second = src.generate(&g, &dev, 0.99, None);
        assert!(first.cost_units > 0.0);
        assert_eq!(second.cost_units, 0.0);
        assert_eq!(first.latency_dt, second.latency_dt);
        assert_eq!(src.cache_len(), 1);
    }

    #[test]
    fn permuted_qubits_share_a_cache_entry() {
        // H on qubit 0 and H on qubit 1 are the same relative pulse.
        let dev = Device::line(2);
        let mut src = GrapeSource::fast();
        let a = src.generate(&[inst(GateKind::H, &[0])], &dev, 0.99, None);
        let b = src.generate(&[inst(GateKind::H, &[1])], &dev, 0.99, None);
        assert_eq!(src.cache_len(), 1);
        assert_eq!(b.cost_units, 0.0);
        assert_eq!(a.latency_dt, b.latency_dt);
    }

    #[test]
    fn merged_pair_beats_stitched_pulses() {
        // The headline claim (Fig. 2): pulse(H·CX) < pulse(H) + pulse(CX).
        let dev = Device::line(2);
        let mut src = GrapeSource::fast();
        let h = inst(GateKind::H, &[0]);
        let cx = inst(GateKind::Cx, &[0, 1]);
        let merged = src.generate(&[h.clone(), cx.clone()], &dev, 0.99, None);
        let h_alone = src.generate(&[h], &dev, 0.99, None);
        let cx_alone = src.generate(&[cx], &dev, 0.99, None);
        assert!(
            merged.latency_ns < h_alone.latency_ns + cx_alone.latency_ns,
            "merged {} vs stitched {}",
            merged.latency_ns,
            h_alone.latency_ns + cx_alone.latency_ns
        );
    }

    #[test]
    fn warm_start_reduces_cost_for_similar_targets() {
        let dev = Device::line(2);
        let mut src = GrapeSource::fast();
        // Generate RZ(0.50), then RZ(0.55) warm: the second should reuse.
        let a = Instruction::new(GateKind::Rz, vec![0], vec![0.5.into()]);
        let b = Instruction::new(GateKind::Rz, vec![0], vec![0.55.into()]);
        let cold = src.generate(&[a], &dev, 0.99, None);
        let warm = src.generate(&[b], &dev, 0.99, Some(0.05));
        assert!(
            warm.cost_units < cold.cost_units,
            "warm {} vs cold {}",
            warm.cost_units,
            cold.cost_units
        );
    }
}
