//! Pulse re-propagation and whole-circuit pulse simulation.
//!
//! This is the workspace's substitute for the paper's QuTiP pulse
//! simulation (Table II): every generated pulse is independently
//! propagated through the Schrödinger equation of its control system,
//! the realized small unitaries are embedded into the full register, and
//! the product is compared against the ideal circuit unitary.

use crate::optimizer::Pulse;
use paqoc_circuit::embed_unitary;
use paqoc_device::ControlSet;
use paqoc_math::{expm, trace_fidelity, Matrix, C64};

/// Propagates a pulse through its control system, returning the realized
/// unitary `U = Π_j exp(-i·2π·dt·H_j)`.
///
/// # Panics
///
/// Panics if the pulse channel count disagrees with the control set.
pub fn propagate(pulse: &Pulse, controls: &ControlSet) -> Matrix {
    let two_pi_dt = 2.0 * std::f64::consts::PI * pulse.step_ns;
    let mut u = Matrix::identity(controls.dim());
    for row in &pulse.amplitudes {
        assert_eq!(
            row.len(),
            controls.channels.len(),
            "pulse channels must match the control system"
        );
        let mut h = controls.drift.clone();
        for (k, ch) in controls.channels.iter().enumerate() {
            if row[k] != 0.0 {
                h.axpy(C64::real(row[k]), &ch.operator);
            }
        }
        let step = expm(&h.scaled(C64::new(0.0, -two_pi_dt)));
        u = step.matmul(&u);
    }
    u
}

/// One scheduled pulse: the realized small unitary and the physical
/// qubits it acts on (in the local-frame order used to build it).
#[derive(Clone, Debug)]
pub struct ScheduledUnitary {
    /// The realized (propagated) unitary of the pulse.
    pub unitary: Matrix,
    /// Physical qubits, position = local index (bit) in `unitary`.
    pub qubits: Vec<usize>,
}

/// Composes realized pulse unitaries over the full register and computes
/// the process fidelity against the ideal whole-circuit unitary.
///
/// `num_qubits` is the register width; keep it ≤ ~10 (dimension `2^n`),
/// matching the paper's observation that pulse simulation is only
/// feasible for a few benchmarks.
///
/// # Panics
///
/// Panics if `ideal` has the wrong dimension or a pulse qubit is out of
/// range.
pub fn circuit_pulse_fidelity(
    schedule: &[ScheduledUnitary],
    ideal: &Matrix,
    num_qubits: usize,
) -> f64 {
    let dim = 1usize << num_qubits;
    assert_eq!(ideal.rows(), dim, "ideal unitary dimension mismatch");
    let mut total = Matrix::identity(dim);
    for item in schedule {
        // `embed_unitary` treats the first listed qubit as the most
        // significant gate bit, while ScheduledUnitary uses position =
        // local bit index (LSB first); reverse to convert.
        let reversed: Vec<usize> = item.qubits.iter().rev().copied().collect();
        let embedded = embed_unitary(&item.unitary, &reversed, num_qubits);
        total = embedded.matmul(&total);
    }
    trace_fidelity(ideal, &total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{optimize, GrapeOptions};
    use paqoc_circuit::{Circuit, GateKind};
    use paqoc_device::{transmon_xy_controls, HardwareSpec};

    #[test]
    fn zero_pulse_is_identity() {
        let controls = transmon_xy_controls(1, &[], &HardwareSpec::transmon_xy());
        let pulse = Pulse {
            step_ns: 0.5,
            channel_names: vec!["x[0]".into(), "y[0]".into()],
            amplitudes: vec![vec![0.0, 0.0]; 8],
        };
        let u = propagate(&pulse, &controls);
        assert!(u.max_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn constant_x_drive_rotates() {
        // α_x = 0.1 GHz for 5 ns → θ = 2π·0.1·5·(1/2-factor…): the
        // generator is σx/2, so θ = 2π·0.1·5 = π: an X gate (up to phase).
        let controls = transmon_xy_controls(1, &[], &HardwareSpec::transmon_xy());
        let pulse = Pulse {
            step_ns: 0.5,
            channel_names: vec!["x[0]".into(), "y[0]".into()],
            amplitudes: vec![vec![0.1, 0.0]; 10],
        };
        let u = propagate(&pulse, &controls);
        let f = trace_fidelity(&GateKind::X.unitary(&[]), &u);
        assert!(f > 1.0 - 1e-9, "fidelity {f}");
    }

    #[test]
    fn propagation_is_unitary() {
        let controls = transmon_xy_controls(2, &[(0, 1)], &HardwareSpec::transmon_xy());
        let pulse = Pulse {
            step_ns: 0.5,
            channel_names: controls.channels.iter().map(|c| c.name.clone()).collect(),
            amplitudes: vec![vec![0.05, -0.02, 0.01, 0.03, 0.015]; 12],
        };
        assert!(propagate(&pulse, &controls).is_unitary(1e-9));
    }

    #[test]
    fn scheduled_pulses_reproduce_a_bell_circuit() {
        let spec = HardwareSpec::transmon_xy();
        let c1 = transmon_xy_controls(1, &[], &spec);
        let c2 = transmon_xy_controls(2, &[(0, 1)], &spec);

        let h = optimize(
            &GateKind::H.unitary(&[]),
            &c1,
            12,
            &GrapeOptions::default(),
            None,
        );
        let cx_opts = GrapeOptions {
            max_iters: 600,
            ..GrapeOptions::default()
        };
        let cx = optimize(&GateKind::Cx.unitary(&[]), &c2, 32, &cx_opts, None);

        let mut ideal = Circuit::new(2);
        ideal.h(0).cx(0, 1);

        // The CX target uses gate convention (first qubit = MSB = control
        // = qubit 0); ScheduledUnitary wants LSB-first qubit order, so
        // the qubit list is [target, control] = [1, 0].
        let schedule = vec![
            ScheduledUnitary {
                unitary: propagate(&h.pulse, &c1),
                qubits: vec![0],
            },
            ScheduledUnitary {
                unitary: propagate(&cx.pulse, &c2),
                qubits: vec![1, 0],
            },
        ];
        let f = circuit_pulse_fidelity(&schedule, &ideal.unitary(), 2);
        assert!(f > 0.99, "circuit pulse fidelity {f}");
    }
}
