//! Minimum-duration pulse search.
//!
//! The paper (Section V-B): "It calculates the minimum duration of the
//! control pulses of a customized gate by binary search." We bracket the
//! feasible duration by doubling from an initial guess, then binary
//! search for the shortest step count that still reaches the fidelity
//! target.

use crate::optimizer::{optimize, GrapeOptions, GrapeResult, Pulse};
use paqoc_device::ControlSet;
use paqoc_math::Matrix;

/// Hard cap on pulse length, in steps (guards against unreachable
/// targets spinning the search forever).
const MAX_STEPS: usize = 1024;

/// The outcome of a minimum-duration search.
#[derive(Clone, Debug)]
pub struct DurationSearch {
    /// The shortest successful optimization.
    pub result: GrapeResult,
    /// Steps of the successful pulse.
    pub steps: usize,
    /// Number of GRAPE optimizations executed.
    pub trials: usize,
    /// Total ADAM iterations across all trials (the compile-cost driver).
    pub total_iterations: usize,
}

/// Finds the minimum-duration pulse reaching `opts.target_fidelity`.
///
/// `initial_steps` seeds the bracket (a good prior, e.g. from the
/// analytic latency model, saves trials); `warm_start` is forwarded to
/// every trial.
///
/// Returns `None` when even `MAX_STEPS` cannot reach the target.
///
/// # Panics
///
/// Panics if the target dimension disagrees with the control system.
pub fn minimize_duration(
    target: &Matrix,
    controls: &ControlSet,
    opts: &GrapeOptions,
    initial_steps: usize,
    warm_start: Option<&Pulse>,
) -> Option<DurationSearch> {
    let mut trials = 0usize;
    let mut total_iterations = 0usize;
    let mut run = |steps: usize| -> GrapeResult {
        trials += 1;
        let r = optimize(target, controls, steps, opts, warm_start);
        total_iterations += r.iterations;
        r
    };

    // Bracket: double until success.
    let mut hi = initial_steps.clamp(2, MAX_STEPS);
    let mut hi_result = run(hi);
    while hi_result.fidelity < opts.target_fidelity {
        if hi >= MAX_STEPS {
            return None;
        }
        hi = (hi * 2).min(MAX_STEPS);
        hi_result = run(hi);
    }

    // Binary search in (lo, hi]: lo is known-infeasible (or zero).
    let mut lo = if hi == initial_steps.clamp(2, MAX_STEPS) {
        1 // initial guess already worked: probe below it
    } else {
        hi / 2 // the previous doubling step failed
    };
    let mut best = (hi, hi_result);
    while lo + 1 < best.0 {
        let mid = (lo + best.0) / 2;
        let r = run(mid);
        if r.fidelity >= opts.target_fidelity {
            best = (mid, r);
        } else {
            lo = mid;
        }
    }

    Some(DurationSearch {
        steps: best.0,
        result: best.1,
        trials,
        total_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_circuit::GateKind;
    use paqoc_device::{transmon_xy_controls, HardwareSpec};

    fn controls1() -> ControlSet {
        transmon_xy_controls(1, &[], &HardwareSpec::transmon_xy())
    }

    #[test]
    fn finds_minimum_near_theoretical_bound() {
        // X gate: π rotation at 2π·0.1 GHz → 5 ns → 10 steps of 0.5 ns.
        let target = GateKind::X.unitary(&[]);
        let opts = GrapeOptions {
            target_fidelity: 0.995,
            ..GrapeOptions::default()
        };
        let search = minimize_duration(&target, &controls1(), &opts, 12, None).expect("feasible");
        assert!(
            (9..=13).contains(&search.steps),
            "steps {} should be near the 10-step bound",
            search.steps
        );
        assert!(search.result.fidelity >= 0.995);
    }

    #[test]
    fn brackets_upward_from_a_low_guess() {
        let target = GateKind::X.unitary(&[]);
        let opts = GrapeOptions {
            target_fidelity: 0.995,
            ..GrapeOptions::default()
        };
        let search = minimize_duration(&target, &controls1(), &opts, 2, None).expect("feasible");
        assert!(search.steps >= 9, "steps {}", search.steps);
        assert!(search.trials >= 3); // had to double at least twice
    }

    #[test]
    fn identity_needs_minimal_steps() {
        let target = Matrix::identity(2);
        let opts = GrapeOptions::default();
        let search = minimize_duration(&target, &controls1(), &opts, 4, None).expect("feasible");
        assert!(search.steps <= 2, "steps {}", search.steps);
    }
}
