//! GRAPE: gradient-ascent pulse engineering with ADAM.
//!
//! Piecewise-constant controls over `N` steps; each step's propagator is
//! `U_j = exp(-i·2π·dt·Σ_k α_k[j]·H_k)`. The process fidelity
//! `F = |Tr(U_target† · U_N⋯U_1)|²/d²` is maximized by ADAM over squashed
//! amplitude parameters (`α = a_max·tanh(θ)` keeps the paper's field
//! limits exactly). The gradient uses the standard first-order GRAPE
//! approximation `∂U_j/∂α ≈ −i·2π·dt·H_k·U_j`, which is accurate for the
//! small step norms used here.

use paqoc_device::ControlSet;
use paqoc_math::{expm, Matrix, Rng, C64};

/// A piecewise-constant control schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct Pulse {
    /// Duration of each step in nanoseconds.
    pub step_ns: f64,
    /// Channel names, aligned with the inner index of `amplitudes`.
    pub channel_names: Vec<String>,
    /// `amplitudes[j][k]`: amplitude of channel `k` during step `j`, GHz.
    pub amplitudes: Vec<Vec<f64>>,
}

impl Pulse {
    /// Total pulse duration in nanoseconds.
    pub fn duration_ns(&self) -> f64 {
        self.step_ns * self.amplitudes.len() as f64
    }

    /// Number of time steps.
    pub fn num_steps(&self) -> usize {
        self.amplitudes.len()
    }
}

/// Tunable knobs of the optimizer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GrapeOptions {
    /// Control step length in nanoseconds.
    pub step_ns: f64,
    /// Maximum ADAM iterations per optimization.
    pub max_iters: usize,
    /// ADAM learning rate on the squashed parameters.
    pub learning_rate: f64,
    /// Stop as soon as this fidelity is reached.
    pub target_fidelity: f64,
    /// RNG seed for the initial guess.
    pub seed: u64,
    /// Independent random restarts if the target is not reached.
    pub restarts: usize,
}

impl Default for GrapeOptions {
    fn default() -> Self {
        GrapeOptions {
            step_ns: 0.5,
            max_iters: 300,
            learning_rate: 0.08,
            target_fidelity: 0.999,
            seed: 0x9a0c,
            restarts: 2,
        }
    }
}

/// The outcome of one GRAPE optimization at a fixed duration.
#[derive(Clone, Debug)]
pub struct GrapeResult {
    /// The optimized control schedule.
    pub pulse: Pulse,
    /// Fidelity reached against the target unitary.
    pub fidelity: f64,
    /// ADAM iterations actually executed (across restarts).
    pub iterations: usize,
}

/// Optimizes a pulse of exactly `steps` steps toward `target`.
///
/// Returns the best result across restarts; stops early once
/// `opts.target_fidelity` is reached. The initial guess may be seeded
/// from `warm_start` amplitudes (cropped or zero-padded to `steps`),
/// mirroring AccQOC's similarity-based warm starting.
///
/// # Panics
///
/// Panics if `target` is not `controls.dim()`-dimensional or `steps == 0`.
pub fn optimize(
    target: &Matrix,
    controls: &ControlSet,
    steps: usize,
    opts: &GrapeOptions,
    warm_start: Option<&Pulse>,
) -> GrapeResult {
    assert!(steps > 0, "pulse must have at least one step");
    assert_eq!(
        target.rows(),
        controls.dim(),
        "target dimension must match the control system"
    );
    let num_channels = controls.channels.len();
    let mut total_iters = 0usize;
    let run_restart = |restart: usize, total_iters: &mut usize| -> GrapeResult {
        paqoc_telemetry::counter("grape.restarts", 1);
        let mut rng = Rng::seed_from_u64(opts.seed.wrapping_add(restart as u64));
        let mut theta = initial_theta(steps, num_channels, warm_start, controls, &mut rng);
        let (fid, iters) = adam_loop(target, controls, &mut theta, opts);
        *total_iters += iters;
        paqoc_telemetry::counter("grape.iterations", iters as u64);
        paqoc_telemetry::observe("grape.iterations_per_restart", iters as f64);
        paqoc_telemetry::event!(
            "grape.restart",
            restart = restart as u64,
            iterations = iters as u64,
            fidelity = fid,
        );
        GrapeResult {
            pulse: theta_to_pulse(&theta, controls, opts.step_ns),
            fidelity: fid,
            iterations: *total_iters,
        }
    };

    // The first restart always runs, so `best` is never absent: no
    // Option on the hot path.
    let mut best = run_restart(0, &mut total_iters);
    for restart in 1..opts.restarts.max(1) {
        if best.fidelity >= opts.target_fidelity {
            break;
        }
        let result = run_restart(restart, &mut total_iters);
        if result.fidelity > best.fidelity {
            best = result;
        }
    }
    best.iterations = total_iters;
    if best.fidelity < opts.target_fidelity {
        paqoc_telemetry::counter("grape.convergence_failures", 1);
    }
    best
}

/// Squash parameter → bounded amplitude.
#[inline]
fn squash(theta: f64, a_max: f64) -> f64 {
    a_max * theta.tanh()
}

/// d(amplitude)/d(theta).
#[inline]
fn squash_grad(theta: f64, a_max: f64) -> f64 {
    let t = theta.tanh();
    a_max * (1.0 - t * t)
}

fn initial_theta(
    steps: usize,
    num_channels: usize,
    warm_start: Option<&Pulse>,
    controls: &ControlSet,
    rng: &mut Rng,
) -> Vec<Vec<f64>> {
    let mut theta = vec![vec![0.0f64; num_channels]; steps];
    match warm_start {
        Some(p) if p.amplitudes.first().map(Vec::len) == Some(num_channels) => {
            for (j, row) in theta.iter_mut().enumerate() {
                let src = &p.amplitudes[j.min(p.amplitudes.len() - 1)];
                for k in 0..num_channels {
                    let a_max = controls.channels[k].max_amp;
                    let ratio = (src[k] / a_max).clamp(-0.999, 0.999);
                    row[k] = ratio.atanh();
                }
            }
        }
        _ => {
            for row in &mut theta {
                for t in row.iter_mut() {
                    *t = (rng.random::<f64>() - 0.5) * 1.2;
                }
            }
        }
    }
    theta
}

fn theta_to_pulse(theta: &[Vec<f64>], controls: &ControlSet, step_ns: f64) -> Pulse {
    Pulse {
        step_ns,
        channel_names: controls.channels.iter().map(|c| c.name.clone()).collect(),
        amplitudes: theta
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&controls.channels)
                    .map(|(&t, ch)| squash(t, ch.max_amp))
                    .collect()
            })
            .collect(),
    }
}

/// Runs ADAM; returns (best fidelity, iterations used).
fn adam_loop(
    target: &Matrix,
    controls: &ControlSet,
    theta: &mut Vec<Vec<f64>>,
    opts: &GrapeOptions,
) -> (f64, usize) {
    let steps = theta.len();
    let num_channels = controls.channels.len();
    let d = controls.dim() as f64;
    let two_pi_dt = 2.0 * std::f64::consts::PI * opts.step_ns;

    let mut m = vec![vec![0.0f64; num_channels]; steps];
    let mut v = vec![vec![0.0f64; num_channels]; steps];
    let (beta1, beta2, eps) = (0.9, 0.999, 1e-8);
    let mut best_fid = 0.0f64;
    let mut best_theta: Option<Vec<Vec<f64>>> = None;

    for iter in 1..=opts.max_iters {
        // Forward pass: per-step propagators and cumulative products.
        let propagation = paqoc_telemetry::kernel_enter("grape.propagation", controls.dim());
        let mut step_h: Vec<Matrix> = Vec::with_capacity(steps);
        let mut props: Vec<Matrix> = Vec::with_capacity(steps);
        for row in theta.iter() {
            let mut h = controls.drift.clone();
            for (k, ch) in controls.channels.iter().enumerate() {
                let amp = squash(row[k], ch.max_amp);
                if amp != 0.0 {
                    h.axpy(C64::real(amp), &ch.operator);
                }
            }
            let u = expm(&h.scaled(C64::new(0.0, -two_pi_dt)));
            step_h.push(h);
            props.push(u);
        }
        // fwd[j] = U_j ⋯ U_1 (prefix products), bwd[j] = U_N ⋯ U_{j+1}.
        let mut fwd: Vec<Matrix> = Vec::with_capacity(steps);
        for (j, u) in props.iter().enumerate() {
            let f = if j == 0 {
                u.clone()
            } else {
                u.matmul(&fwd[j - 1])
            };
            fwd.push(f);
        }
        let mut bwd: Vec<Matrix> = vec![Matrix::identity(controls.dim()); steps];
        for j in (0..steps.saturating_sub(1)).rev() {
            bwd[j] = bwd[j + 1].matmul(&props[j + 1]);
        }

        drop(propagation);

        let total = &fwd[steps - 1];
        let overlap = target.dagger().matmul(total).trace();
        let fid = (overlap.norm_sqr() / (d * d)).min(1.0);
        if !fid.is_finite() {
            // A numerically diverged step (overflowed propagator, NaN in
            // the gradient) would silently poison every remaining
            // iteration — and the table's supervisor can only catch
            // *panics*, not quiet NaN fixpoints. Abort the loop and
            // return the best finite state instead.
            paqoc_telemetry::counter("grape.nan_aborts", 1);
            if let Some(b) = best_theta {
                *theta = b;
            }
            return (best_fid, iter);
        }
        if fid > best_fid {
            best_fid = fid;
            best_theta = Some(theta.clone());
        }
        // Convergence series for the event journal: sampled so a full
        // optimization adds a handful of records, not one per iteration.
        if iter % 32 == 0 {
            paqoc_telemetry::event!(
                "grape.converge",
                iter = iter as u64,
                fidelity = best_fid,
                steps = steps as u64,
            );
        }
        if fid >= opts.target_fidelity {
            if let Some(b) = best_theta {
                *theta = b;
            }
            return (best_fid, iter);
        }

        // Gradient: dg/dα_{kj} = Tr(U_t† · B_j · (−i·2π·dt·H_k) · F_j)
        // with F_j the prefix *including* step j (first-order GRAPE).
        paqoc_telemetry::kernel_probe!("grape.gradient", controls.dim());
        let tdag = target.dagger();
        for j in 0..steps {
            // M_j = U_t† · B_j ; row-product with (−i 2π dt H_k) F_j.
            let left = tdag.matmul(&bwd[j]);
            let right = &fwd[j];
            for (k, ch) in controls.channels.iter().enumerate() {
                // dg = Tr(left · (−i 2π dt H_k) · right)
                let hk_right = ch.operator.matmul(right);
                let mut dg = C64::ZERO;
                let dim = controls.dim();
                for r in 0..dim {
                    for c in 0..dim {
                        dg = dg.mul_add(left[(r, c)], hk_right[(c, r)]);
                    }
                }
                let dg = dg * C64::new(0.0, -two_pi_dt);
                // dF/dα = 2·Re(conj(g)·dg)/d²  (maximize → ascend)
                let dfda = 2.0 * (overlap.conj() * dg).re / (d * d);
                let grad = dfda * squash_grad(theta[j][k], ch.max_amp);

                // ADAM ascent step.
                m[j][k] = beta1 * m[j][k] + (1.0 - beta1) * grad;
                v[j][k] = beta2 * v[j][k] + (1.0 - beta2) * grad * grad;
                let mc = m[j][k] / (1.0 - beta1.powi(iter as i32));
                let vc = v[j][k] / (1.0 - beta2.powi(iter as i32));
                theta[j][k] += opts.learning_rate * mc / (vc.sqrt() + eps);
            }
        }
    }
    if let Some(b) = best_theta {
        *theta = b;
    }
    (best_fid, opts.max_iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_circuit::GateKind;
    use paqoc_device::{transmon_xy_controls, HardwareSpec};
    use paqoc_math::trace_fidelity;

    fn controls1() -> ControlSet {
        transmon_xy_controls(1, &[], &HardwareSpec::transmon_xy())
    }

    fn controls2() -> ControlSet {
        transmon_xy_controls(2, &[(0, 1)], &HardwareSpec::transmon_xy())
    }

    #[test]
    fn reaches_x_gate() {
        let target = GateKind::X.unitary(&[]);
        // X needs a π rotation at 0.1 GHz → ≈5 ns → 10 steps of 0.5 ns.
        let r = optimize(&target, &controls1(), 12, &GrapeOptions::default(), None);
        assert!(r.fidelity > 0.999, "fidelity {}", r.fidelity);
    }

    #[test]
    fn reaches_hadamard() {
        let target = GateKind::H.unitary(&[]);
        let r = optimize(&target, &controls1(), 12, &GrapeOptions::default(), None);
        assert!(r.fidelity > 0.999, "fidelity {}", r.fidelity);
    }

    #[test]
    fn too_short_pulse_fails() {
        // 1 step of 0.5 ns cannot produce a π rotation at 0.1 GHz.
        let target = GateKind::X.unitary(&[]);
        let r = optimize(&target, &controls1(), 1, &GrapeOptions::default(), None);
        assert!(r.fidelity < 0.9, "fidelity {}", r.fidelity);
    }

    #[test]
    fn reaches_cx_gate() {
        let target = GateKind::Cx.unitary(&[]);
        // CX content π/4 at 0.02 GHz ≈ 6.25 ns → 16 steps of 0.5 ns.
        let opts = GrapeOptions {
            max_iters: 600,
            ..GrapeOptions::default()
        };
        let r = optimize(&target, &controls2(), 32, &opts, None);
        assert!(r.fidelity > 0.99, "fidelity {}", r.fidelity);
    }

    #[test]
    fn pulse_respects_amplitude_limits() {
        let target = GateKind::X.unitary(&[]);
        let r = optimize(&target, &controls1(), 12, &GrapeOptions::default(), None);
        for row in &r.pulse.amplitudes {
            for (k, &amp) in row.iter().enumerate() {
                let lim = controls1().channels[k].max_amp;
                assert!(amp.abs() <= lim + 1e-12, "channel {k} amp {amp}");
            }
        }
    }

    #[test]
    fn optimization_is_deterministic() {
        let target = GateKind::H.unitary(&[]);
        let a = optimize(&target, &controls1(), 12, &GrapeOptions::default(), None);
        let b = optimize(&target, &controls1(), 12, &GrapeOptions::default(), None);
        assert_eq!(a.pulse, b.pulse);
        assert_eq!(a.fidelity, b.fidelity);
    }

    #[test]
    fn warm_start_from_own_solution_converges_instantly() {
        let target = GateKind::X.unitary(&[]);
        let cold = optimize(&target, &controls1(), 12, &GrapeOptions::default(), None);
        let warm = optimize(
            &target,
            &controls1(),
            12,
            &GrapeOptions::default(),
            Some(&cold.pulse),
        );
        assert!(warm.fidelity > 0.999);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn optimized_pulse_propagates_to_target() {
        // Re-propagate the pulse independently and compare unitaries.
        let target = GateKind::H.unitary(&[]);
        let controls = controls1();
        let r = optimize(&target, &controls, 12, &GrapeOptions::default(), None);
        let u = crate::sim::propagate(&r.pulse, &controls);
        let f = trace_fidelity(&target, &u);
        assert!((f - r.fidelity).abs() < 1e-9, "{f} vs {}", r.fidelity);
    }
}
