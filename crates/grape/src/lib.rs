//! # paqoc-grape
//!
//! A from-scratch GRAPE (GRadient Ascent Pulse Engineering) stack:
//! the ADAM-driven optimizer over piecewise-constant controls
//! ([`optimize`]), the paper's minimum-duration binary search
//! ([`minimize_duration`]), pulse re-propagation and whole-circuit pulse
//! simulation ([`propagate`], [`circuit_pulse_fidelity`] — the QuTiP
//! substitute for Table II), and [`GrapeSource`], the real-numerics
//! implementation of `paqoc_device::PulseSource` with exact caching and
//! AccQOC-style similarity warm starts.
//!
//! ## Example
//!
//! ```
//! use paqoc_grape::{optimize, GrapeOptions};
//! use paqoc_device::{transmon_xy_controls, HardwareSpec};
//! use paqoc_circuit::GateKind;
//!
//! let controls = transmon_xy_controls(1, &[], &HardwareSpec::transmon_xy());
//! let target = GateKind::X.unitary(&[]);
//! let r = optimize(&target, &controls, 12, &GrapeOptions::default(), None);
//! assert!(r.fidelity > 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod duration;
mod optimizer;
mod sim;
mod source;

pub use duration::{minimize_duration, DurationSearch};
pub use optimizer::{optimize, GrapeOptions, GrapeResult, Pulse};
pub use sim::{circuit_pulse_fidelity, propagate, ScheduledUnitary};
pub use source::{GrapeFactory, GrapeSource};
