//! Micro-benchmarks of the workspace's hot kernels, plus an end-to-end
//! compile bench per configuration (the ablation anchors).
//!
//! Hand-rolled `std::time::Instant` harness (no external bench crate in
//! this offline build): each kernel is warmed up, then timed over enough
//! iterations to fill a fixed measurement window, and the per-iteration
//! mean/min are printed. Run with `cargo bench -p paqoc-bench`.

use paqoc_accqoc::{compile_accqoc, AccqocOptions};
use paqoc_circuit::{decompose, Basis, Circuit, GateKind};
use paqoc_core::{compile, PipelineOptions};
use paqoc_device::{transmon_xy_controls, AnalyticModel, Device, HardwareSpec, PulseSource};
use paqoc_grape::{optimize, GrapeOptions};
use paqoc_mapping::{sabre_map, SabreOptions};
use paqoc_math::{expm, weyl_coordinates, C64};
use paqoc_mining::{mine_frequent_subcircuits, MinerOptions};
use paqoc_workloads::benchmark;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `f` and prints per-iteration statistics.
///
/// Warm-up runs calibrate an iteration count that fills ~0.5 s, then the
/// workload is measured in batches so `Instant::now` overhead stays out
/// of the numbers.
fn bench(name: &str, mut f: impl FnMut()) {
    const WARMUP: Duration = Duration::from_millis(100);
    const MEASURE: Duration = Duration::from_millis(500);

    // Warm up and estimate the cost of one iteration.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < WARMUP {
        f();
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

    // Measure in batches of roughly 1/10 of the window each.
    let batch = ((MEASURE.as_secs_f64() / 10.0 / per_iter).ceil() as u64).max(1);
    let mut total_iters = 0u64;
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    while total < MEASURE {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        let elapsed = t.elapsed();
        total += elapsed;
        total_iters += batch;
        best = best.min(elapsed / batch as u32);
    }
    let mean = total / total_iters as u32;
    println!(
        "{name:<28} {:>12} iters   mean {:>12?}   min {:>12?}",
        total_iters, mean, best
    );
}

fn bench_expm() {
    let controls = transmon_xy_controls(3, &[(0, 1), (1, 2)], &HardwareSpec::transmon_xy());
    let mut h = controls.drift.clone();
    for ch in &controls.channels {
        h.axpy(C64::real(0.01), &ch.operator);
    }
    bench("expm_8x8", || {
        black_box(expm(black_box(&h.scaled(C64::new(0.0, -0.5)))));
    });
}

fn bench_weyl() {
    let u = paqoc_math::random_unitary_seeded(4, 42);
    bench("weyl_coordinates_4x4", || {
        black_box(weyl_coordinates(black_box(&u)));
    });
}

fn bench_grape_iteration() {
    let controls = transmon_xy_controls(1, &[], &HardwareSpec::transmon_xy());
    let target = GateKind::H.unitary(&[]);
    let opts = GrapeOptions {
        max_iters: 10,
        restarts: 1,
        target_fidelity: 1.1, // never met: measures 10 raw iterations
        ..GrapeOptions::default()
    };
    bench("grape_10_iterations_1q", || {
        black_box(optimize(black_box(&target), &controls, 12, &opts, None));
    });
}

fn bench_analytic_model() {
    let device = Device::grid5x5();
    let mut model = AnalyticModel::new();
    let mut circ = Circuit::new(3);
    circ.h(0).cx(0, 1).rz(1, 0.4).cx(1, 2).cx(0, 1);
    let group = circ.instructions().to_vec();
    bench("analytic_model_3q_group", || {
        black_box(model.generate(black_box(&group), &device, 0.999, None));
    });
}

fn bench_sabre() {
    let qaoa = (benchmark("qaoa").expect("exists").build)();
    let lowered = decompose(&qaoa, Basis::Extended);
    let device = Device::grid5x5();
    bench("sabre_qaoa_10q", || {
        black_box(sabre_map(
            black_box(&lowered),
            device.topology(),
            &SabreOptions::default(),
        ));
    });
}

fn bench_miner() {
    let simon = (benchmark("simon").expect("exists").build)();
    let lowered = decompose(&simon, Basis::Extended);
    bench("miner_simon", || {
        black_box(mine_frequent_subcircuits(
            black_box(&lowered),
            &MinerOptions::default(),
        ));
    });
}

fn bench_compile_configs() {
    let device = Device::grid5x5();
    let circ = (benchmark("rd32_270").expect("exists").build)();
    bench("compile_rd32/paqoc_m0", || {
        let mut src = AnalyticModel::new();
        black_box(compile(
            black_box(&circ),
            &device,
            &mut src,
            &PipelineOptions::m0(),
        ));
    });
    bench("compile_rd32/paqoc_minf", || {
        let mut src = AnalyticModel::new();
        black_box(compile(
            black_box(&circ),
            &device,
            &mut src,
            &PipelineOptions::m_inf(),
        ));
    });
    bench("compile_rd32/accqoc_n3d3", || {
        let mut src = AnalyticModel::new();
        black_box(compile_accqoc(
            black_box(&circ),
            &device,
            &mut src,
            &AccqocOptions::n3d3(),
        ));
    });
}

fn main() {
    println!("kernel micro-benchmarks (Instant harness, 0.5 s window each)");
    bench_expm();
    bench_weyl();
    bench_grape_iteration();
    bench_analytic_model();
    bench_sabre();
    bench_miner();
    bench_compile_configs();
}
