//! Criterion micro-benchmarks of the workspace's hot kernels, plus an
//! end-to-end compile bench per configuration (the ablation anchors).

use criterion::{criterion_group, criterion_main, Criterion};
use paqoc_accqoc::{compile_accqoc, AccqocOptions};
use paqoc_circuit::{decompose, Basis, Circuit, GateKind};
use paqoc_core::{compile, PipelineOptions};
use paqoc_device::{transmon_xy_controls, AnalyticModel, Device, HardwareSpec, PulseSource};
use paqoc_grape::{optimize, GrapeOptions};
use paqoc_mapping::{sabre_map, SabreOptions};
use paqoc_math::{expm, weyl_coordinates, C64};
use paqoc_mining::{mine_frequent_subcircuits, MinerOptions};
use paqoc_workloads::benchmark;
use std::hint::black_box;

fn bench_expm(c: &mut Criterion) {
    let controls = transmon_xy_controls(3, &[(0, 1), (1, 2)], &HardwareSpec::transmon_xy());
    let mut h = controls.drift.clone();
    for ch in &controls.channels {
        h.axpy(C64::real(0.01), &ch.operator);
    }
    c.bench_function("expm_8x8", |b| {
        b.iter(|| expm(black_box(&h.scaled(C64::new(0.0, -0.5)))))
    });
}

fn bench_weyl(c: &mut Criterion) {
    let u = paqoc_math::random_unitary_seeded(4, 42);
    c.bench_function("weyl_coordinates_4x4", |b| {
        b.iter(|| weyl_coordinates(black_box(&u)))
    });
}

fn bench_grape_iteration(c: &mut Criterion) {
    let controls = transmon_xy_controls(1, &[], &HardwareSpec::transmon_xy());
    let target = GateKind::H.unitary(&[]);
    let opts = GrapeOptions {
        max_iters: 10,
        restarts: 1,
        target_fidelity: 1.1, // never met: measures 10 raw iterations
        ..GrapeOptions::default()
    };
    c.bench_function("grape_10_iterations_1q", |b| {
        b.iter(|| optimize(black_box(&target), &controls, 12, &opts, None))
    });
}

fn bench_analytic_model(c: &mut Criterion) {
    let device = Device::grid5x5();
    let mut model = AnalyticModel::new();
    let mut circ = Circuit::new(3);
    circ.h(0).cx(0, 1).rz(1, 0.4).cx(1, 2).cx(0, 1);
    let group = circ.instructions().to_vec();
    c.bench_function("analytic_model_3q_group", |b| {
        b.iter(|| model.generate(black_box(&group), &device, 0.999, None))
    });
}

fn bench_sabre(c: &mut Criterion) {
    let qaoa = (benchmark("qaoa").expect("exists").build)();
    let lowered = decompose(&qaoa, Basis::Extended);
    let device = Device::grid5x5();
    c.bench_function("sabre_qaoa_10q", |b| {
        b.iter(|| sabre_map(black_box(&lowered), device.topology(), &SabreOptions::default()))
    });
}

fn bench_miner(c: &mut Criterion) {
    let simon = (benchmark("simon").expect("exists").build)();
    let lowered = decompose(&simon, Basis::Extended);
    c.bench_function("miner_simon", |b| {
        b.iter(|| mine_frequent_subcircuits(black_box(&lowered), &MinerOptions::default()))
    });
}

fn bench_compile_configs(c: &mut Criterion) {
    let device = Device::grid5x5();
    let circ = (benchmark("rd32_270").expect("exists").build)();
    let mut group = c.benchmark_group("compile_rd32");
    group.sample_size(10);
    group.bench_function("paqoc_m0", |b| {
        b.iter(|| {
            let mut src = AnalyticModel::new();
            compile(black_box(&circ), &device, &mut src, &PipelineOptions::m0())
        })
    });
    group.bench_function("paqoc_minf", |b| {
        b.iter(|| {
            let mut src = AnalyticModel::new();
            compile(black_box(&circ), &device, &mut src, &PipelineOptions::m_inf())
        })
    });
    group.bench_function("accqoc_n3d3", |b| {
        b.iter(|| {
            let mut src = AnalyticModel::new();
            compile_accqoc(black_box(&circ), &device, &mut src, &AccqocOptions::n3d3())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_expm,
    bench_weyl,
    bench_grape_iteration,
    bench_analytic_model,
    bench_sabre,
    bench_miner,
    bench_compile_configs
);
criterion_main!(benches);
