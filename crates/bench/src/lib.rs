//! # paqoc-bench
//!
//! The evaluation harness: shared machinery for regenerating every
//! table and figure of the PAQOC paper. Each `src/bin/figNN.rs` /
//! `src/bin/tableN.rs` binary prints the same rows or series the paper
//! reports; this library holds the five compilation configurations
//! (`accqoc_n3d3`, `accqoc_n3d5`, `paqoc(M=0)`, `paqoc(M=tuned)`,
//! `paqoc(M=inf)`) and the result plumbing they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use paqoc_accqoc::{compile_accqoc, AccqocOptions};
use paqoc_circuit::Circuit;
use paqoc_core::{compile, PipelineOptions};
use paqoc_device::{AnalyticModel, Device};

/// The five evaluation configurations, in the paper's legend order.
pub const CONFIG_NAMES: [&str; 5] = [
    "accqoc_n3d3",
    "accqoc_n3d5",
    "paqoc(M=0)",
    "paqoc(M=tuned)",
    "paqoc(M=inf)",
];

/// One configuration's compilation outcome, normalized-friendly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfigOutcome {
    /// Whole-circuit pulse latency in device cycles.
    pub latency_dt: u64,
    /// ESP (paper Eq. 2).
    pub esp: f64,
    /// Synthetic compile cost (GRAPE work units).
    pub cost_units: f64,
    /// Pulses actually generated.
    pub pulses_generated: usize,
    /// Wall-clock seconds of the compilation.
    pub wall_seconds: f64,
    /// Final number of customized gates / blocks.
    pub num_groups: usize,
}

/// Runs one benchmark circuit through all five configurations with the
/// analytic pulse source (deterministic, laptop-fast).
pub fn evaluate_all_configs(circuit: &Circuit, device: &Device) -> [ConfigOutcome; 5] {
    let accqoc = |opts: AccqocOptions| {
        let mut src = AnalyticModel::new();
        let r = compile_accqoc(circuit, device, &mut src, &opts);
        ConfigOutcome {
            latency_dt: r.latency_dt,
            esp: r.esp,
            cost_units: r.stats.cost_units,
            pulses_generated: r.stats.pulses_generated,
            wall_seconds: r.wall_seconds,
            num_groups: r.blocks.len(),
        }
    };
    let paqoc = |opts: PipelineOptions| {
        let mut src = AnalyticModel::new();
        let r = compile(circuit, device, &mut src, &opts);
        ConfigOutcome {
            latency_dt: r.latency_dt,
            esp: r.esp,
            cost_units: r.stats.cost_units,
            pulses_generated: r.stats.pulses_generated,
            wall_seconds: r.wall_seconds,
            num_groups: r.num_groups(),
        }
    };
    [
        accqoc(AccqocOptions::n3d3()),
        accqoc(AccqocOptions::n3d5()),
        paqoc(PipelineOptions::m0()),
        paqoc(PipelineOptions::m_tuned()),
        paqoc(PipelineOptions::m_inf()),
    ]
}

/// Prints a normalized table: `value(config) / value(accqoc_n3d3)`,
/// plus the per-configuration average row.
pub fn print_normalized<F: Fn(&ConfigOutcome) -> f64>(
    title: &str,
    rows: &[(String, [ConfigOutcome; 5])],
    metric: F,
    lower_is_better: bool,
) {
    println!(
        "\n=== {title} (normalized to accqoc_n3d3, {} is better) ===",
        if lower_is_better { "lower" } else { "higher" }
    );
    print!("{:<15}", "benchmark");
    for name in CONFIG_NAMES {
        print!("{name:>16}");
    }
    println!();
    let mut sums = [0.0f64; 5];
    for (name, outcomes) in rows {
        let baseline = metric(&outcomes[0]).max(1e-12);
        print!("{name:<15}");
        for (k, o) in outcomes.iter().enumerate() {
            let v = metric(o) / baseline;
            sums[k] += v;
            print!("{v:>16.3}");
        }
        println!();
    }
    print!("{:<15}", "average");
    for s in sums {
        print!("{:>16.3}", s / rows.len() as f64);
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_configs_run_on_a_small_benchmark() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(2, 0.4).cx(0, 1);
        let device = Device::grid5x5();
        let outcomes = evaluate_all_configs(&c, &device);
        for o in &outcomes {
            assert!(o.latency_dt > 0);
            assert!(o.esp > 0.0 && o.esp <= 1.0);
            assert!(o.num_groups > 0);
        }
        // PAQOC M=0 never loses to the accqoc_n3d3 baseline on latency.
        assert!(outcomes[2].latency_dt <= outcomes[0].latency_dt);
    }
}
