//! Regenerates Table I: the application benchmark overview
//! (name, description, #qubits, 1q-gate and 2q-gate counts of the
//! universal-basis input circuit).

use paqoc_circuit::{decompose, Basis};
use paqoc_workloads::all_benchmarks;

fn main() {
    println!("=== Table I: overview of application benchmarks ===");
    println!(
        "{:<15} {:<22} {:>7} {:>9} {:>9} {:>12}",
        "Name", "Description", "#qubits", "1q-gate", "2q-gate", "basis gates"
    );
    for b in all_benchmarks() {
        let c = (b.build)();
        let low = decompose(&c, Basis::Ibm);
        println!(
            "{:<15} {:<22} {:>7} {:>9} {:>9} {:>12}",
            b.name,
            b.description,
            c.num_qubits(),
            c.one_qubit_gate_count(),
            c.two_qubit_gate_count(),
            low.len()
        );
    }
}
