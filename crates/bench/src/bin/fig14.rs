//! Regenerates Fig. 14: paqoc(M=inf) compilation cost versus circuit
//! size across the seventeen benchmarks, with the least-squares linear
//! fit the paper draws. The paper's claim: near-linear scaling.

use paqoc_core::{compile, PipelineOptions};
use paqoc_device::{AnalyticModel, Device};
use paqoc_workloads::all_benchmarks;

fn main() {
    let device = Device::grid5x5();
    println!("=== Fig. 14: paqoc(M=inf) compile cost vs circuit size ===");
    println!(
        "{:<15} {:>8} {:>14} {:>10}",
        "benchmark", "#gates", "cost_units", "wall_s"
    );
    let mut pts: Vec<(f64, f64)> = Vec::new();
    for b in all_benchmarks() {
        let c = (b.build)();
        let mut src = AnalyticModel::new();
        let r = compile(&c, &device, &mut src, &PipelineOptions::m_inf());
        println!(
            "{:<15} {:>8} {:>14.1} {:>10.2}",
            b.name,
            r.physical.len(),
            r.stats.cost_units,
            r.wall_seconds
        );
        pts.push((r.physical.len() as f64, r.stats.cost_units));
    }
    // Least-squares fit cost = a·gates + b.
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let a = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let b = (sy - a * sx) / n;
    // Pearson r.
    let mx = sx / n;
    let my = sy / n;
    let cov: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let vx: f64 = pts.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let vy: f64 = pts.iter().map(|p| (p.1 - my).powi(2)).sum();
    let r = cov / (vx.sqrt() * vy.sqrt());
    println!("\nlinear fit: cost ≈ {a:.3}·gates + {b:.1}   (Pearson r = {r:.3})");
}
