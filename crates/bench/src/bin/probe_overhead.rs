//! The kernel-probe overhead gate.
//!
//! Compiles the bench `--quick` subset in-process twice — once with
//! kernel probes forced OFF, once forced ON (telemetry collection
//! stays off in both, the realistic production configuration) — and
//! fails when the probes-on run is more than `--max-overhead` slower
//! (default 3%). Each side takes the minimum wall time over `--rounds`
//! interleaved repetitions, which suppresses one-off scheduler noise;
//! a small absolute grace floor keeps the gate meaningful on runs too
//! short for a relative bound. `scripts/verify.sh` runs this as part
//! of the perf-regression gate.
//!
//! Exit code: 0 when the overhead is within budget, 1 when it is not.

use paqoc_core::{compile, PipelineOptions};
use paqoc_device::{AnalyticModel, Device};
use paqoc_workloads::benchmark;
use std::time::Instant;

/// Same subset as `bench --quick`: the three fastest Table-I entries.
const QUICK_SUBSET: [&str; 3] = ["mod5d2_64", "rd32_270", "bv"];

/// Absolute grace floor: below this delta the run is dominated by
/// timer and scheduler noise, not by the probes.
const GRACE_SECONDS: f64 = 0.1;

/// One pass over the quick subset with fresh sources and tables;
/// returns its wall time in seconds.
fn suite_wall(device: &Device, opts: &PipelineOptions) -> f64 {
    let start = Instant::now();
    for name in QUICK_SUBSET {
        let b = benchmark(name).expect("quick-subset benchmark exists");
        let circuit = (b.build)();
        let mut source = AnalyticModel::new();
        let result = compile(&circuit, device, &mut source, opts);
        std::hint::black_box(result.latency_dt);
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let mut max_overhead = 0.03f64;
    let mut rounds = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--max-overhead" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(x) if x > 0.0 => max_overhead = x,
                _ => usage(),
            },
            "--rounds" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => rounds = n,
                _ => usage(),
            },
            _ => usage(),
        }
    }

    let device = Device::grid5x5();
    let opts = PipelineOptions::m_inf();

    paqoc_telemetry::set_kernel_probes(Some(true));
    if !paqoc_telemetry::kernel_probes_enabled() {
        println!(
            "probe_overhead: kernel probes are compiled out (no `kernel-probes` feature) — \
             nothing to gate"
        );
        return;
    }

    // Warm-up pass: page everything in before timing either side.
    paqoc_telemetry::set_kernel_probes(Some(false));
    suite_wall(&device, &opts);

    // Interleave off/on rounds so slow drift (thermal, background
    // load) hits both sides equally; keep the per-side minimum.
    let mut off_min = f64::INFINITY;
    let mut on_min = f64::INFINITY;
    for _ in 0..rounds {
        paqoc_telemetry::set_kernel_probes(Some(false));
        off_min = off_min.min(suite_wall(&device, &opts));
        paqoc_telemetry::set_kernel_probes(Some(true));
        on_min = on_min.min(suite_wall(&device, &opts));
        // Drop the accumulated probe state between rounds so the store
        // never grows across the measurement.
        paqoc_telemetry::reset();
    }
    paqoc_telemetry::set_kernel_probes(None);

    let overhead = if off_min > 0.0 {
        (on_min - off_min) / off_min
    } else {
        0.0
    };
    let budget = off_min * (1.0 + max_overhead) + GRACE_SECONDS;
    println!(
        "probe_overhead: quick suite min-of-{rounds}: probes off {off_min:.3}s, \
         on {on_min:.3}s ({:+.2}% — budget {:.0}% + {GRACE_SECONDS:.1}s grace)",
        overhead * 100.0,
        max_overhead * 100.0
    );
    if on_min <= budget {
        println!("probe_overhead: OK (within budget)");
    } else {
        eprintln!("probe_overhead: FAIL: probes-on wall {on_min:.3}s exceeds budget {budget:.3}s");
        std::process::exit(1);
    }
}

fn usage() -> ! {
    eprintln!("usage: probe_overhead [--max-overhead X] [--rounds N]");
    std::process::exit(2);
}
