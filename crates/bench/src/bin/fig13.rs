//! Regenerates Fig. 13: how depth-limited AccQOC grouping interacts
//! with the CPHASE pattern in qaoa. Depth-3 blocks happen to capture
//! the 2-CX+RZ CPHASE skeleton; depth-5 blocks cut it differently.
//! PAQOC's miner finds the CPHASE pattern automatically without any
//! depth parameter.

use paqoc_accqoc::partition_fixed;
use paqoc_circuit::{decompose, Basis};
use paqoc_core::{compile, PipelineOptions};
use paqoc_device::{AnalyticModel, Device};
use paqoc_workloads::benchmark;

fn main() {
    let qaoa = (benchmark("qaoa").expect("qaoa exists").build)();
    let device = Device::grid5x5();
    let physical = decompose(&qaoa, Basis::Ibm);

    println!("=== Fig. 13: gate grouping of the qaoa CPHASE pattern ===");
    for depth in [3usize, 5] {
        let p = partition_fixed(&physical, 3, depth);
        // Count blocks that capture the CPHASE core (cx·rz·cx on one
        // qubit pair) in full — the grouping the paper's Fig. 13 shows
        // depth limits finding or missing.
        let cphase_blocks = p
            .blocks
            .iter()
            .filter(|b| {
                let names: Vec<&str> = b
                    .iter()
                    .map(|&i| physical.instructions()[i].gate().name())
                    .collect();
                names.windows(3).any(|w| w == ["cx", "rz", "cx"])
            })
            .count();
        println!(
            "accqoc n3d{depth}: {} blocks, {} of them contain a full CPHASE core",
            p.blocks.len(),
            cphase_blocks
        );
    }

    let mut src = AnalyticModel::new();
    let r = compile(
        &qaoa,
        &device,
        &mut src,
        &PipelineOptions {
            skip_mapping: true,
            ..PipelineOptions::m_inf()
        },
    );
    println!(
        "paqoc miner   : {} APA-basis gates selected, covering {} gates",
        r.apa.num_apa_gates(),
        r.apa.covered_gates
    );
    for sel in &r.apa.selections {
        println!(
            "  APA gate ({} gates, {} qubits, {} uses): {}",
            sel.num_gates,
            sel.num_qubits,
            sel.occurrences.len(),
            sel.code
        );
    }
}
