//! Regenerates Fig. 11: circuit compilation time under all five
//! configurations, normalized to accqoc_n3d3. Reported in synthetic
//! GRAPE work units (machine-independent) and wall-clock seconds.
//! The paper: paqoc(M=inf) < paqoc(M=tuned) < paqoc(M=0), with an
//! average 43% overhead reduction vs the baseline.

use paqoc_bench::{evaluate_all_configs, print_normalized};
use paqoc_device::Device;
use paqoc_workloads::all_benchmarks;

fn main() {
    let device = Device::grid5x5();
    let rows: Vec<_> = all_benchmarks()
        .into_iter()
        .map(|b| {
            let c = (b.build)();
            eprintln!("compiling {} ...", b.name);
            (b.name.to_string(), evaluate_all_configs(&c, &device))
        })
        .collect();
    print_normalized(
        "Fig. 11: compilation cost (GRAPE work units)",
        &rows,
        |o| o.cost_units,
        true,
    );
    print_normalized(
        "Fig. 11 (supplement): pulses actually generated",
        &rows,
        |o| o.pulses_generated as f64,
        true,
    );
}
