//! The cross-PR perf-regression harness: runs the 17 embedded Table-I
//! benchmarks through `try_compile_batch` — concurrently, on a
//! work-stealing pool — and writes `BENCH_pipeline.json`: per-benchmark
//! wall time, latency, ESP, pulse-table hit rate, search iterations and
//! degradation counts in a stable schema, so successive PRs can diff
//! machine-readable perf trajectories instead of eyeballing stdout
//! tables.
//!
//! Usage: `bench [--quick] [--check] [--config m0|tuned|minf] [--out PATH]
//! [--backend NAME] [--pulse-db PATH] [--store-max-bytes N] [--expect-warm]
//! [--threads N] [--stable-dump PATH] [--min-speedup X]`
//!
//! * `--quick`    — 3-benchmark subset (CI smoke; same schema).
//! * `--check`    — after writing, parse the file back with the in-tree
//!   JSON parser and assert every schema key is present (exit 1 if not).
//! * `--config`   — pipeline configuration (default `minf`, the paper's
//!   cheapest-compile mode).
//! * `--backend`  — device backend (a `paqoc-backend` registry name;
//!   default `transmon-grid`). Benchmarks that need more qubits than
//!   the backend has are skipped with a notice. The name lands in the
//!   top-level `backend` column so `report compare` can refuse
//!   cross-backend baselines.
//! * `--out`      — output path (default `BENCH_pipeline.json`).
//! * `--pulse-db` — persistent pulse store path. All concurrent
//!   compilations pool one store-backed [`SharedPulseTable`] (the log is
//!   single-handle); a second (warm) run against the same path serves
//!   every pulse from it. The `store_hits` column records how many
//!   lookups the store itself answered. While the suite runs, a
//!   background maintenance thread evicts/compacts the store off the
//!   compile path; the run's final store health lands in the top-level
//!   `store_bytes` / `store_evictions` / `store_compactions` columns.
//! * `--store-max-bytes N` — eviction budget for the store's compacted
//!   size (see `StoreOptions::max_bytes`); only meaningful with
//!   `--pulse-db`.
//! * `--expect-warm` — assert the run was fully warm: zero pulses
//!   generated per benchmark and at least one store hit across the
//!   suite (exit 1 otherwise). Per-benchmark store hits are
//!   schedule-dependent under concurrency — a benchmark may be served
//!   from the shared shard layer a sibling compile already filled —
//!   so only the generation count is gated per benchmark. This is the
//!   cold→warm acceptance gate in `scripts/verify.sh`.
//! * `--threads N` — worker count for the benchmark-level pool
//!   (default: `PAQOC_THREADS`, then hardware parallelism). Inside each
//!   compilation the executor runs single-threaded, so results are a
//!   pure function of the input regardless of N.
//! * `--stable-dump PATH` — also write a reduced JSON containing only
//!   deterministic columns (no wall times, no `threads`). Without
//!   `--pulse-db` (no state pooled between compiles) the dump is
//!   byte-identical across `--threads` values — `scripts/verify.sh`
//!   diffs a 1-thread run against a 4-thread run with `cmp`.
//! * `--min-speedup X` — exit 1 unless `wall_speedup` (sum of
//!   per-benchmark wall seconds over elapsed wall time, i.e. achieved
//!   concurrency overlap) reaches X. Only meaningful with enough cores.

use paqoc_core::{try_compile_batch, CompilationResult, PipelineOptions};
use paqoc_exec::{
    effective_threads, parallel_map, AnalyticFactory, PulseSourceFactory, SharedPulseTable,
};
use paqoc_telemetry::json::{self, Value};
use paqoc_workloads::all_benchmarks;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Schema version; bump on any key change so trend tooling can gate.
/// v2: added `store_hits` (persistent pulse-store hits) per benchmark.
/// v3: benchmarks run concurrently via `try_compile_batch`; added
/// top-level `threads` (pool width) and `wall_speedup` (sum of
/// per-benchmark wall seconds / elapsed wall seconds).
/// v4: added top-level store health — `store_bytes` (on-disk size),
/// `store_evictions` and `store_compactions` (this run's counts).
/// Zero without `--pulse-db`; `report compare` treats them as soft.
/// v5: added per-benchmark `kernel_ns` — a map of numeric-kernel name
/// to nanoseconds spent there during the compile (kernel-probe
/// attribution). Empty when probes are compiled out or disarmed;
/// omitted from `--stable-dump`; `report compare` treats it as soft.
/// v6: added top-level `backend` (the registry name the suite compiled
/// against; `--backend` selects it, default `transmon-grid`). `report
/// compare` hard-fails on cross-backend baselines. Files older than v6
/// are implicitly `transmon-grid`. Not in `--stable-dump` (whose byte
/// identity across thread counts is the point).
const SCHEMA_VERSION: u64 = 6;

/// The `--quick` subset: the three fastest Table-I benchmarks, spanning
/// a Toffoli network, an adder and an oracle family.
const QUICK_SUBSET: [&str; 3] = ["mod5d2_64", "rd32_270", "bv"];

/// Keys every per-benchmark object must carry (asserted by `--check`).
const BENCHMARK_KEYS: [&str; 18] = [
    "name",
    "wall_seconds",
    "latency_ns",
    "latency_dt",
    "esp",
    "physical_gates",
    "num_groups",
    "pulse_table_hit_rate",
    "pulses_generated",
    "cache_hits",
    "store_hits",
    "cost_units",
    "search_iterations",
    "preprocess_merges",
    "criticality_merges",
    "rejected_merges",
    "degradations",
    "kernel_ns",
];

/// Keys the top-level object must carry (asserted by `--check`).
const TOP_KEYS: [&str; 11] = [
    "schema_version",
    "config",
    "backend",
    "quick",
    "threads",
    "benchmarks",
    "total_wall_seconds",
    "wall_speedup",
    "store_bytes",
    "store_evictions",
    "store_compactions",
];

fn write_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// One benchmark row. `stable_only` drops the schedule-dependent
/// columns (`wall_seconds`, `store_hits`, `kernel_ns`) for
/// `--stable-dump`.
fn benchmark_object(name: &str, r: &CompilationResult, stable_only: bool) -> String {
    let lookups = r.stats.cache_hits + r.stats.pulses_generated;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        r.stats.cache_hits as f64 / lookups as f64
    };
    let mut o = String::new();
    o.push_str("{\"name\":");
    o.push_str(&json::escape(name));
    if !stable_only {
        let _ = write!(o, ",\"wall_seconds\":");
        write_num(&mut o, r.wall_seconds);
    }
    o.push_str(",\"latency_ns\":");
    write_num(&mut o, r.latency_ns);
    let _ = write!(o, ",\"latency_dt\":{},\"esp\":", r.latency_dt);
    write_num(&mut o, r.esp);
    let _ = write!(
        o,
        ",\"physical_gates\":{},\"num_groups\":{},\"pulse_table_hit_rate\":",
        r.physical.len(),
        r.num_groups()
    );
    write_num(&mut o, hit_rate);
    let _ = write!(
        o,
        ",\"pulses_generated\":{},\"cache_hits\":{}",
        r.stats.pulses_generated, r.stats.cache_hits
    );
    if !stable_only {
        let _ = write!(o, ",\"store_hits\":{}", r.stats.store_hits);
    }
    o.push_str(",\"cost_units\":");
    write_num(&mut o, r.stats.cost_units);
    let _ = write!(
        o,
        ",\"search_iterations\":{},\"preprocess_merges\":{},\"criticality_merges\":{},\
         \"rejected_merges\":{},\"degradations\":{},\"partial\":{}",
        r.report.iterations,
        r.report.preprocess_merges,
        r.report.criticality_merges,
        r.report.rejected_merges,
        r.degradations.len(),
        r.partial
    );
    if !stable_only {
        // Kernel-probe attribution: soft wall-time data, kept out of
        // the byte-compared stable dump. `{}` when probes are off.
        o.push_str(",\"kernel_ns\":{");
        for (i, (kernel, ns)) in r.kernel_ns.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "{}:{ns}", json::escape(kernel));
        }
        o.push('}');
    }
    o.push('}');
    o
}

fn check_schema(text: &str) -> Result<usize, String> {
    let doc = json::parse(text).map_err(|e| format!("BENCH_pipeline.json does not parse: {e}"))?;
    for key in TOP_KEYS {
        if doc.get(key).is_none() {
            return Err(format!("missing top-level key '{key}'"));
        }
    }
    let Some(Value::Arr(benches)) = doc.get("benchmarks") else {
        return Err("'benchmarks' is not an array".to_string());
    };
    if benches.is_empty() {
        return Err("'benchmarks' is empty".to_string());
    }
    for b in benches {
        for key in BENCHMARK_KEYS {
            if b.get(key).is_none() {
                let name = b.get("name").and_then(Value::as_str).unwrap_or("?");
                return Err(format!("benchmark '{name}' is missing key '{key}'"));
            }
        }
    }
    Ok(benches.len())
}

fn main() {
    let mut quick = false;
    let mut check = false;
    let mut config = "minf".to_string();
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut pulse_db: Option<std::path::PathBuf> = None;
    let mut store_max_bytes: Option<u64> = None;
    let mut expect_warm = false;
    let mut threads_flag: Option<usize> = None;
    let mut stable_dump: Option<String> = None;
    let mut min_speedup: Option<f64> = None;
    let mut backend_name = "transmon-grid".to_string();
    let usage = "usage: bench [--quick] [--check] [--config m0|tuned|minf] [--out PATH] \
                 [--backend NAME] [--pulse-db PATH] [--store-max-bytes N] [--expect-warm] \
                 [--threads N] [--stable-dump PATH] [--min-speedup X]";
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--config" => config = args.next().unwrap_or_default(),
            "--out" => out_path = args.next().unwrap_or_default(),
            "--backend" => match args.next() {
                Some(n) if !n.is_empty() => backend_name = n,
                _ => {
                    eprintln!("--backend requires a name argument");
                    std::process::exit(2);
                }
            },
            "--pulse-db" => match args.next() {
                Some(p) if !p.is_empty() => pulse_db = Some(std::path::PathBuf::from(p)),
                _ => {
                    eprintln!("--pulse-db requires a path argument");
                    std::process::exit(2);
                }
            },
            "--store-max-bytes" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => store_max_bytes = Some(n),
                _ => {
                    eprintln!("--store-max-bytes requires a positive integer");
                    std::process::exit(2);
                }
            },
            "--expect-warm" => expect_warm = true,
            "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => threads_flag = Some(n),
                _ => {
                    eprintln!("--threads requires a positive integer");
                    std::process::exit(2);
                }
            },
            "--stable-dump" => match args.next() {
                Some(p) if !p.is_empty() => stable_dump = Some(p),
                _ => {
                    eprintln!("--stable-dump requires a path argument");
                    std::process::exit(2);
                }
            },
            "--min-speedup" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(x) if x > 0.0 => min_speedup = Some(x),
                _ => {
                    eprintln!("--min-speedup requires a positive number");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }
    let mut opts = match config.as_str() {
        "m0" => PipelineOptions::m0(),
        "tuned" => PipelineOptions::m_tuned(),
        "minf" => PipelineOptions::m_inf(),
        other => {
            eprintln!("unknown config '{other}' (expected m0, tuned or minf)");
            std::process::exit(2);
        }
    };
    let threads = effective_threads(threads_flag);
    // Concurrency lives at the benchmark level; each compilation's inner
    // executor stays single-threaded so per-benchmark results are a pure
    // function of the input (the determinism the --stable-dump diff
    // checks), and the pool is never oversubscribed threads × threads.
    opts.threads = Some(1);
    let mut shared_handle: Option<Arc<SharedPulseTable>> = None;
    if let Some(path) = pulse_db {
        // One store-backed shared table pools all compilations: the
        // first compile to reach the store attaches it (attach_store is
        // first-wins, so the open race between workers is benign).
        opts.pulse_db = Some(path);
        if let Some(n) = store_max_bytes {
            opts.store_options.max_bytes = Some(n);
        }
        let shared = Arc::new(SharedPulseTable::new());
        shared_handle = Some(Arc::clone(&shared));
        opts.shared_table = Some(shared);
    }
    // Background store maintenance (eviction/compaction) off the compile
    // path for the duration of the suite; the RAII handle joins it
    // before the health columns are read.
    let maintenance = shared_handle
        .as_ref()
        .map(|shared| shared.start_maintenance(std::time::Duration::from_millis(200)));

    let backend = match paqoc_backend::resolve(&backend_name) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench: {e}");
            std::process::exit(2);
        }
    };
    let device = backend.device();
    let benches: Vec<_> = all_benchmarks()
        .into_iter()
        .filter(|b| !quick || QUICK_SUBSET.contains(&b.name))
        .filter(|b| {
            // Smaller backends (tunable-coupler has 16 qubits) cannot
            // host the whole Table-I corpus; skip what does not fit,
            // loudly, so a shrunken suite is never mistaken for a run.
            let fits = (b.build)().num_qubits() <= device.topology().num_qubits();
            if !fits {
                println!(
                    "bench: {:<14} skipped (needs more qubits than {backend_name} has)",
                    b.name
                );
            }
            fits
        })
        .collect();
    let started = Instant::now();
    let results: Vec<(&'static str, Result<CompilationResult, String>)> =
        parallel_map(benches, threads, |_, b| {
            let circuit = (b.build)();
            let factory: Arc<dyn PulseSourceFactory> = Arc::new(AnalyticFactory);
            let outcome =
                try_compile_batch(&circuit, &device, factory, &opts).map_err(|e| e.to_string());
            (b.name, outcome)
        });
    let total_wall = started.elapsed().as_secs_f64();
    if let Some(handle) = maintenance {
        handle.stop();
    }
    let store_health = shared_handle
        .as_ref()
        .and_then(|shared| shared.store_health())
        .unwrap_or_default();

    let mut rows: Vec<String> = Vec::new();
    let mut stable_rows: Vec<String> = Vec::new();
    let mut failures = 0usize;
    let mut cold_benchmarks: Vec<&'static str> = Vec::new();
    let mut serial_wall = 0.0f64;
    let mut total_store_hits = 0usize;
    for (name, outcome) in &results {
        match outcome {
            Ok(result) => {
                println!(
                    "bench: {:<14} {:>8.3}s  {:>8} dt  esp {:.4}  hits {}/{}  store {}  iters {}",
                    name,
                    result.wall_seconds,
                    result.latency_dt,
                    result.esp,
                    result.stats.cache_hits,
                    result.stats.cache_hits + result.stats.pulses_generated,
                    result.stats.store_hits,
                    result.report.iterations
                );
                if result.stats.pulses_generated > 0 {
                    cold_benchmarks.push(name);
                }
                serial_wall += result.wall_seconds;
                total_store_hits += result.stats.store_hits;
                rows.push(benchmark_object(name, result, false));
                stable_rows.push(benchmark_object(name, result, true));
            }
            Err(e) => {
                eprintln!("bench: {name} FAILED: {e}");
                failures += 1;
                cold_benchmarks.push(name);
            }
        }
    }
    let wall_speedup = if total_wall > 0.0 {
        serial_wall / total_wall
    } else {
        1.0
    };

    let mut doc = String::new();
    let _ = write!(
        doc,
        "{{\"schema_version\":{SCHEMA_VERSION},\"config\":{},\"backend\":{},\
         \"quick\":{quick},\"threads\":{threads},\"benchmarks\":[",
        json::escape(&format!("paqoc({config})")),
        json::escape(&backend_name)
    );
    doc.push_str(&rows.join(","));
    doc.push_str("],\"total_wall_seconds\":");
    write_num(&mut doc, total_wall);
    doc.push_str(",\"wall_speedup\":");
    write_num(&mut doc, wall_speedup);
    let _ = write!(
        doc,
        ",\"store_bytes\":{},\"store_evictions\":{},\"store_compactions\":{}",
        store_health.file_bytes, store_health.evictions, store_health.compactions
    );
    doc.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!(
        "bench: wrote {out_path} ({} benchmarks, {total_wall:.1}s total, {threads} threads, \
         {wall_speedup:.2}x overlap)",
        rows.len(),
    );
    if shared_handle.as_ref().is_some_and(|s| s.has_store()) {
        println!(
            "bench: store health: {} bytes on disk ({} live, {} dead), {} evictions, \
             {} compactions{}",
            store_health.file_bytes,
            store_health.live_bytes,
            store_health.dead_bytes,
            store_health.evictions,
            store_health.compactions,
            if store_health.writer {
                ""
            } else {
                " [read-only]"
            }
        );
    }
    if let Some(path) = stable_dump {
        let mut sdoc = String::new();
        let _ = write!(
            sdoc,
            "{{\"schema_version\":{SCHEMA_VERSION},\"config\":{},\"quick\":{quick},\
             \"benchmarks\":[",
            json::escape(&format!("paqoc({config})"))
        );
        sdoc.push_str(&stable_rows.join(","));
        sdoc.push_str("]}\n");
        if let Err(e) = std::fs::write(&path, &sdoc) {
            eprintln!("bench: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("bench: wrote stable dump {path}");
    }

    if check {
        let text = match std::fs::read_to_string(&out_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench: cannot read back {out_path}: {e}");
                std::process::exit(1);
            }
        };
        match check_schema(&text) {
            Ok(n) => println!("bench: schema check OK ({n} benchmarks, all keys present)"),
            Err(e) => {
                eprintln!("bench: schema check FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    if expect_warm {
        if cold_benchmarks.is_empty() && total_store_hits > 0 {
            println!(
                "bench: warm-start check OK (no pulses generated, {total_store_hits} store hits)"
            );
        } else {
            eprintln!(
                "bench: warm-start check FAILED: {} benchmark(s) generated pulses ({}); \
                 {total_store_hits} store hits across the suite",
                cold_benchmarks.len(),
                cold_benchmarks.join(", ")
            );
            std::process::exit(1);
        }
    }
    if let Some(min) = min_speedup {
        if wall_speedup < min {
            eprintln!(
                "bench: speedup check FAILED: wall_speedup {wall_speedup:.2} < required {min:.2} \
                 ({threads} threads)"
            );
            std::process::exit(1);
        }
        println!("bench: speedup check OK ({wall_speedup:.2}x >= {min:.2}x)");
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
