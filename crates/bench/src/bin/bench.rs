//! The cross-PR perf-regression harness: runs the 17 embedded Table-I
//! benchmarks through `try_compile` and writes `BENCH_pipeline.json` —
//! per-benchmark wall time, latency, ESP, pulse-table hit rate, search
//! iterations and degradation counts in a stable schema, so successive
//! PRs can diff machine-readable perf trajectories instead of eyeballing
//! stdout tables.
//!
//! Usage: `bench [--quick] [--check] [--config m0|tuned|minf] [--out PATH]
//! [--pulse-db PATH] [--expect-warm]`
//!
//! * `--quick`    — 3-benchmark subset (CI smoke; same schema).
//! * `--check`    — after writing, parse the file back with the in-tree
//!   JSON parser and assert every schema key is present (exit 1 if not).
//! * `--config`   — pipeline configuration (default `minf`, the paper's
//!   cheapest-compile mode).
//! * `--out`      — output path (default `BENCH_pipeline.json`).
//! * `--pulse-db` — persistent pulse store path; a second (warm) run
//!   against the same path serves every pulse from disk. The
//!   `store_hits` column records how many lookups the store answered.
//! * `--expect-warm` — assert the run was fully warm: zero pulses
//!   generated and at least one store hit per benchmark (exit 1
//!   otherwise). This is the cold→warm acceptance gate in
//!   `scripts/verify.sh`.

use paqoc_core::{try_compile, CompilationResult, PipelineOptions};
use paqoc_device::{AnalyticModel, Device};
use paqoc_telemetry::json::{self, Value};
use paqoc_workloads::all_benchmarks;
use std::fmt::Write as _;
use std::time::Instant;

/// Schema version; bump on any key change so trend tooling can gate.
/// v2: added `store_hits` (persistent pulse-store hits) per benchmark.
const SCHEMA_VERSION: u64 = 2;

/// The `--quick` subset: the three fastest Table-I benchmarks, spanning
/// a Toffoli network, an adder and an oracle family.
const QUICK_SUBSET: [&str; 3] = ["mod5d2_64", "rd32_270", "bv"];

/// Keys every per-benchmark object must carry (asserted by `--check`).
const BENCHMARK_KEYS: [&str; 17] = [
    "name",
    "wall_seconds",
    "latency_ns",
    "latency_dt",
    "esp",
    "physical_gates",
    "num_groups",
    "pulse_table_hit_rate",
    "pulses_generated",
    "cache_hits",
    "store_hits",
    "cost_units",
    "search_iterations",
    "preprocess_merges",
    "criticality_merges",
    "rejected_merges",
    "degradations",
];

/// Keys the top-level object must carry (asserted by `--check`).
const TOP_KEYS: [&str; 5] = [
    "schema_version",
    "config",
    "quick",
    "benchmarks",
    "total_wall_seconds",
];

fn write_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn benchmark_object(name: &str, r: &CompilationResult) -> String {
    let lookups = r.stats.cache_hits + r.stats.pulses_generated;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        r.stats.cache_hits as f64 / lookups as f64
    };
    let mut o = String::new();
    o.push_str("{\"name\":");
    o.push_str(&json::escape(name));
    let _ = write!(o, ",\"wall_seconds\":");
    write_num(&mut o, r.wall_seconds);
    o.push_str(",\"latency_ns\":");
    write_num(&mut o, r.latency_ns);
    let _ = write!(o, ",\"latency_dt\":{},\"esp\":", r.latency_dt);
    write_num(&mut o, r.esp);
    let _ = write!(
        o,
        ",\"physical_gates\":{},\"num_groups\":{},\"pulse_table_hit_rate\":",
        r.physical.len(),
        r.num_groups()
    );
    write_num(&mut o, hit_rate);
    let _ = write!(
        o,
        ",\"pulses_generated\":{},\"cache_hits\":{},\"store_hits\":{},\"cost_units\":",
        r.stats.pulses_generated, r.stats.cache_hits, r.stats.store_hits
    );
    write_num(&mut o, r.stats.cost_units);
    let _ = write!(
        o,
        ",\"search_iterations\":{},\"preprocess_merges\":{},\"criticality_merges\":{},\
         \"rejected_merges\":{},\"degradations\":{},\"partial\":{}}}",
        r.report.iterations,
        r.report.preprocess_merges,
        r.report.criticality_merges,
        r.report.rejected_merges,
        r.degradations.len(),
        r.partial
    );
    o
}

fn check_schema(text: &str) -> Result<usize, String> {
    let doc = json::parse(text).map_err(|e| format!("BENCH_pipeline.json does not parse: {e}"))?;
    for key in TOP_KEYS {
        if doc.get(key).is_none() {
            return Err(format!("missing top-level key '{key}'"));
        }
    }
    let Some(Value::Arr(benches)) = doc.get("benchmarks") else {
        return Err("'benchmarks' is not an array".to_string());
    };
    if benches.is_empty() {
        return Err("'benchmarks' is empty".to_string());
    }
    for b in benches {
        for key in BENCHMARK_KEYS {
            if b.get(key).is_none() {
                let name = b.get("name").and_then(Value::as_str).unwrap_or("?");
                return Err(format!("benchmark '{name}' is missing key '{key}'"));
            }
        }
    }
    Ok(benches.len())
}

fn main() {
    let mut quick = false;
    let mut check = false;
    let mut config = "minf".to_string();
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut pulse_db: Option<std::path::PathBuf> = None;
    let mut expect_warm = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--config" => config = args.next().unwrap_or_default(),
            "--out" => out_path = args.next().unwrap_or_default(),
            "--pulse-db" => match args.next() {
                Some(p) if !p.is_empty() => pulse_db = Some(std::path::PathBuf::from(p)),
                _ => {
                    eprintln!("--pulse-db requires a path argument");
                    std::process::exit(2);
                }
            },
            "--expect-warm" => expect_warm = true,
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: bench [--quick] [--check] [--config m0|tuned|minf] [--out PATH] \
                     [--pulse-db PATH] [--expect-warm]"
                );
                std::process::exit(2);
            }
        }
    }
    let mut opts = match config.as_str() {
        "m0" => PipelineOptions::m0(),
        "tuned" => PipelineOptions::m_tuned(),
        "minf" => PipelineOptions::m_inf(),
        other => {
            eprintln!("unknown config '{other}' (expected m0, tuned or minf)");
            std::process::exit(2);
        }
    };
    opts.pulse_db = pulse_db;

    let device = Device::grid5x5();
    let started = Instant::now();
    let mut rows: Vec<String> = Vec::new();
    let mut failures = 0usize;
    let mut cold_benchmarks: Vec<&'static str> = Vec::new();
    for b in all_benchmarks() {
        if quick && !QUICK_SUBSET.contains(&b.name) {
            continue;
        }
        let circuit = (b.build)();
        let mut source = AnalyticModel::new();
        match try_compile(&circuit, &device, &mut source, &opts) {
            Ok(result) => {
                println!(
                    "bench: {:<14} {:>8.3}s  {:>8} dt  esp {:.4}  hits {}/{}  store {}  iters {}",
                    b.name,
                    result.wall_seconds,
                    result.latency_dt,
                    result.esp,
                    result.stats.cache_hits,
                    result.stats.cache_hits + result.stats.pulses_generated,
                    result.stats.store_hits,
                    result.report.iterations
                );
                if result.stats.pulses_generated > 0 || result.stats.store_hits == 0 {
                    cold_benchmarks.push(b.name);
                }
                rows.push(benchmark_object(b.name, &result));
            }
            Err(e) => {
                eprintln!("bench: {} FAILED: {e}", b.name);
                failures += 1;
                cold_benchmarks.push(b.name);
            }
        }
    }

    let mut doc = String::new();
    let _ = write!(
        doc,
        "{{\"schema_version\":{SCHEMA_VERSION},\"config\":{},\"quick\":{quick},\"benchmarks\":[",
        json::escape(&format!("paqoc({config})"))
    );
    doc.push_str(&rows.join(","));
    doc.push_str("],\"total_wall_seconds\":");
    write_num(&mut doc, started.elapsed().as_secs_f64());
    doc.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!(
        "bench: wrote {out_path} ({} benchmarks, {:.1}s total)",
        rows.len(),
        started.elapsed().as_secs_f64()
    );

    if check {
        let text = match std::fs::read_to_string(&out_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench: cannot read back {out_path}: {e}");
                std::process::exit(1);
            }
        };
        match check_schema(&text) {
            Ok(n) => println!("bench: schema check OK ({n} benchmarks, all keys present)"),
            Err(e) => {
                eprintln!("bench: schema check FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    if expect_warm {
        if cold_benchmarks.is_empty() {
            println!("bench: warm-start check OK (every benchmark served from the pulse store)");
        } else {
            eprintln!(
                "bench: warm-start check FAILED: {} benchmark(s) generated pulses or missed \
                 the store: {}",
                cold_benchmarks.len(),
                cold_benchmarks.join(", ")
            );
            std::process::exit(1);
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
