//! Ablation study over PAQOC's design knobs (DESIGN.md §7):
//! top-k merges per iteration, the customized-gate qubit cap maxN,
//! criticality pruning on/off, and preprocessing on/off.

use paqoc_core::{compile, PaqocOptions, PipelineOptions};
use paqoc_device::{AnalyticModel, Device};
use paqoc_workloads::benchmark;

fn run(name: &str, gen: PaqocOptions) -> (u64, f64, usize) {
    let c = (benchmark(name).expect(name).build)();
    let device = Device::grid5x5();
    let mut src = AnalyticModel::new();
    let opts = PipelineOptions {
        generator: gen,
        ..PipelineOptions::m0()
    };
    let r = compile(&c, &device, &mut src, &opts);
    (r.latency_dt, r.stats.cost_units, r.stats.pulses_generated)
}

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "qaoa".into());
    println!("=== Ablations on {bench} (latency dt / cost units / pulses) ===");
    let base = PaqocOptions::default();

    for k in [1usize, 2, 4, 8] {
        let (l, c, p) = run(&bench, PaqocOptions { top_k: k, ..base });
        println!("top_k={k:<2}                  : {l:>8} dt {c:>10.1} cu {p:>5} pulses");
    }
    for maxn in [2usize, 3, 4] {
        let (l, c, p) = run(
            &bench,
            PaqocOptions {
                max_qubits: maxn,
                ..base
            },
        );
        println!("maxN={maxn:<3}                 : {l:>8} dt {c:>10.1} cu {p:>5} pulses");
    }
    for crit in [true, false] {
        let (l, c, p) = run(
            &bench,
            PaqocOptions {
                criticality_pruning: crit,
                ..base
            },
        );
        println!("criticality_pruning={crit:<5}: {l:>8} dt {c:>10.1} cu {p:>5} pulses");
    }
    for pre in [true, false] {
        let (l, c, p) = run(
            &bench,
            PaqocOptions {
                preprocess: pre,
                ..base
            },
        );
        println!("preprocess={pre:<5}         : {l:>8} dt {c:>10.1} cu {p:>5} pulses");
    }
}
