//! Regenerates Fig. 2: pulse generation for a group of two gates
//! (H then CX consolidated into one unitary) versus separate per-gate
//! pulses stitched together — with *real GRAPE* optimization, the same
//! experiment as the paper's headline example (110 dt vs 170 dt).

use paqoc_circuit::{GateKind, Instruction};
use paqoc_device::{Device, PulseSource};
use paqoc_grape::GrapeSource;

fn main() {
    let device = Device::line(2);
    let mut grape = GrapeSource::fast();
    let h = Instruction::new(GateKind::H, vec![0], vec![]);
    let cx = Instruction::new(GateKind::Cx, vec![0, 1], vec![]);

    println!("=== Fig. 2: merged vs separate pulse generation (real GRAPE) ===");
    let h_alone = grape.generate(std::slice::from_ref(&h), &device, 0.99, None);
    let cx_alone = grape.generate(std::slice::from_ref(&cx), &device, 0.99, None);
    let merged = grape.generate(&[h, cx], &device, 0.99, None);

    println!(
        "H alone      : {:>5} dt (fidelity {:.4})",
        h_alone.latency_dt, h_alone.fidelity
    );
    println!(
        "CX alone     : {:>5} dt (fidelity {:.4})",
        cx_alone.latency_dt, cx_alone.fidelity
    );
    println!(
        "separate sum : {:>5} dt   <- the paper reports 170 dt",
        h_alone.latency_dt + cx_alone.latency_dt
    );
    println!(
        "merged H·CX  : {:>5} dt   <- the paper reports 110 dt (fidelity {:.4})",
        merged.latency_dt, merged.fidelity
    );
    let ratio = merged.latency_dt as f64 / (h_alone.latency_dt + cx_alone.latency_dt) as f64;
    println!("merged/separate = {ratio:.2} (paper: 110/170 = 0.65)");
    assert!(merged.latency_dt < h_alone.latency_dt + cx_alone.latency_dt);
}
