//! The paper's stated future work (§VII), quantified: how much circuit
//! latency headroom does commutativity-aware scheduling (CLS-style)
//! add on top of the strict dependence DAG?
//!
//! For every benchmark we compare the critical path of the routed
//! physical circuit under (a) the strict per-qubit dependence DAG and
//! (b) the commutation-aware DAG, with per-gate pulse latencies from
//! the analytic model — an upper bound on what plugging commutativity
//! into the merge loop could recover.

use paqoc_circuit::{decompose, Basis, DependencyDag};
use paqoc_device::{AnalyticModel, Device, PulseSource};
use paqoc_mapping::{sabre_map, SabreOptions};
use paqoc_workloads::all_benchmarks;

fn main() {
    let device = Device::grid5x5();
    let mut model = AnalyticModel::new();
    println!("=== Commutativity-aware scheduling headroom (future work, paper §VII) ===");
    println!(
        "{:<15} {:>10} {:>14} {:>14} {:>8}",
        "benchmark", "#gates", "strict(dt)", "commute(dt)", "ratio"
    );
    let mut sum = 0.0;
    let mut n = 0usize;
    for b in all_benchmarks() {
        let c = (b.build)();
        let lowered = decompose(&c, Basis::Extended);
        let mapped = sabre_map(&lowered, device.topology(), &SabreOptions::default());
        let physical = decompose(&mapped.circuit, Basis::Extended);
        let weights: Vec<f64> = physical
            .iter()
            .map(|i| {
                model
                    .generate(std::slice::from_ref(i), &device, 0.999, None)
                    .latency_ns
            })
            .collect();
        let strict = DependencyDag::from_circuit(&physical).makespan(&weights);
        let relaxed = DependencyDag::from_circuit_commutation_aware(&physical).makespan(&weights);
        let ratio = relaxed / strict;
        sum += ratio;
        n += 1;
        println!(
            "{:<15} {:>10} {:>14} {:>14} {:>8.3}",
            b.name,
            physical.len(),
            device.spec().ns_to_dt(strict),
            device.spec().ns_to_dt(relaxed),
            ratio
        );
        assert!(relaxed <= strict + 1e-9, "relaxation can only shorten");
    }
    println!("\naverage commute/strict ratio: {:.3}", sum / n as f64);
}
