//! Prints a telemetry profile of one end-to-end compilation: the span
//! tree with per-phase wall time, the pipeline counter table (merge
//! candidates pruned, APA rejections, GRAPE iterations, …) and the
//! pulse-table cache hit rate.
//!
//! Usage: `profile [benchmark] [config] [--batch] [--grape]` where
//! `benchmark` is a Table-I name (default `qaoa`) and `config` is `m0`,
//! `tuned` or `minf` (default `minf`). `--batch` compiles through
//! [`try_compile_batch`] — the work-stealing executor path — so the
//! trace additionally carries `exec.job` / `exec.worker` / `exec.batch`
//! journal events for `report jobs` and `report workers`. `--grape`
//! swaps the free analytic pulse source for the real GRAPE optimizer
//! (its fast test profile), which drives the `mathkit.*` /
//! `grape.*` kernel probes hard — the configuration `report hotspots`
//! and `report flame` are made for. With
//! `PAQOC_TRACE=<path>.json` the trace is dumped
//! in Chrome trace-event format (open in Perfetto / `chrome://tracing`);
//! any other `PAQOC_TRACE=<path>` dumps raw JSON Lines. With
//! `PAQOC_METRICS_MS=<interval>` the flight recorder samples gauges and
//! process CPU/RSS into the journal at that cadence — Perfetto renders
//! them as counter timelines, and `report jobs|phases|workers` digests
//! the same dump offline. For the machine-readable cross-benchmark
//! schema, use the `bench` binary (writes `BENCH_pipeline.json`).

use paqoc_core::{compile, try_compile_batch, PipelineOptions};
use paqoc_device::{AnalyticModel, Device};
use paqoc_exec::{AnalyticFactory, PulseSourceFactory};
use paqoc_grape::{GrapeFactory, GrapeSource};
use paqoc_workloads::{all_benchmarks, benchmark};
use std::sync::Arc;

fn main() {
    let mut batch = false;
    let mut grape = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--batch" {
            batch = true;
        } else if arg == "--grape" {
            grape = true;
        } else {
            positional.push(arg);
        }
    }
    let mut args = positional.into_iter();
    let bench_name = args.next().unwrap_or_else(|| "qaoa".to_string());
    let config = args.next().unwrap_or_else(|| "minf".to_string());

    let Some(b) = benchmark(&bench_name) else {
        eprintln!("unknown benchmark '{bench_name}'; available:");
        for b in all_benchmarks() {
            eprintln!("  {}", b.name);
        }
        std::process::exit(1);
    };
    let opts = match config.as_str() {
        "m0" => PipelineOptions::m0(),
        "tuned" => PipelineOptions::m_tuned(),
        "minf" => PipelineOptions::m_inf(),
        other => {
            eprintln!("unknown config '{other}' (expected m0, tuned or minf)");
            std::process::exit(1);
        }
    };
    let opts = PipelineOptions {
        trace: true,
        ..opts
    };

    paqoc_telemetry::set_enabled(true);
    paqoc_telemetry::reset();
    // Honour PAQOC_METRICS_MS: background gauge/CPU/RSS sampling into
    // the journal for the whole compilation (off unless the env is set).
    let _recorder = paqoc_exec::FlightRecorder::from_env();

    let circuit = (b.build)();
    let device = Device::grid5x5();
    let result = if batch {
        let factory: Arc<dyn PulseSourceFactory> = if grape {
            Arc::new(GrapeFactory::fast())
        } else {
            Arc::new(AnalyticFactory)
        };
        match try_compile_batch(&circuit, &device, factory, &opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("profile: batch compile failed: {e}");
                std::process::exit(1);
            }
        }
    } else if grape {
        let mut source = GrapeSource::fast();
        compile(&circuit, &device, &mut source, &opts)
    } else {
        let mut source = AnalyticModel::new();
        compile(&circuit, &device, &mut source, &opts)
    };

    let snap = paqoc_telemetry::snapshot();
    println!(
        "profile: {} / paqoc({config}) — {} physical gates, {} groups, {} dt{}",
        b.name,
        result.physical.len(),
        result.num_groups(),
        result.latency_dt,
        if result.partial { " (PARTIAL)" } else { "" }
    );
    if !result.degradations.is_empty() {
        println!("degradations ({}):", result.degradations.len());
        for d in &result.degradations {
            println!("  - {d}");
        }
    }
    println!();
    print!("{}", snap.render_report());

    // Pulse-table cache hit rate across all group sizes.
    let sum_prefix = |prefix: &str| -> u64 {
        snap.counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    };
    let hits = sum_prefix("table.cache_hit.");
    let misses = sum_prefix("table.cache_miss.");
    let lookups = hits + misses;
    if lookups > 0 {
        println!(
            "pulse-table cache: {hits}/{lookups} hits ({:.1}%)",
            100.0 * hits as f64 / lookups as f64
        );
    }
    // The batch path resolves hits through the shared table's own
    // claim counters, so the per-arity table counters only reconcile
    // with CompileStats on the sequential path.
    if !batch {
        assert_eq!(
            hits as usize, result.stats.cache_hits,
            "telemetry and CompileStats must agree on cache hits"
        );
    }

    match paqoc_telemetry::write_env_trace() {
        Ok(Some(path)) => {
            if path.extension().is_some_and(|e| e == "json") {
                println!(
                    "trace written to {} (Chrome trace format — open in https://ui.perfetto.dev \
                     or chrome://tracing)",
                    path.display()
                );
            } else {
                println!("trace written to {} (JSON Lines)", path.display());
            }
        }
        Ok(None) => {}
        Err(e) => eprintln!("failed to write trace: {e}"),
    }
}
