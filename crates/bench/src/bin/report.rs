//! Offline flight-recorder analysis and the perf-regression gate.
//!
//! `report` post-processes the artifacts the rest of the harness
//! already writes — `PAQOC_TRACE` journal dumps (JSON Lines or Chrome
//! trace format) and `BENCH_pipeline.json` — without re-running
//! anything:
//!
//! * `report jobs TRACE [--top N]` — the N slowest executor jobs, from
//!   `exec.job` journal events (their `wall_us` field).
//! * `report phases TRACE` — per-phase wall/self time aggregated over
//!   the span tree, plus the critical path (the longest root-to-leaf
//!   span chain).
//! * `report workers TRACE` — per-worker utilization table from
//!   `exec.worker` events (busy/idle/steal split, steal counts) and a
//!   stall summary from `exec.stall` events.
//! * `report compare CURRENT BASELINE [--counts-only]
//!   [--wall-tolerance X]` — diffs two `BENCH_pipeline.json` files,
//!   matching benchmarks by name (a `--quick` run gates against the
//!   full-suite baseline via the intersection). Deterministic count
//!   columns (`latency_dt`, `pulses_generated`, `store_hits`, …) must
//!   match exactly and float columns (`esp`, `latency_ns`, …) within
//!   1e-6 relative; any drift is a hard failure (exit 1). Wall-clock
//!   columns are soft: reported always, fatal only when the relative
//!   slowdown exceeds `--wall-tolerance` (default 0.5) and
//!   `--counts-only` was not given. The top-level store-health columns
//!   (`store_bytes`, `store_evictions`, `store_compactions`) are soft:
//!   drift is printed but never fatal. The per-benchmark `kernel_ns`
//!   map (schema v5) is soft too: totals are reported, never gated.
//!   `scripts/verify.sh` runs the `--counts-only` form against the
//!   committed repo-root baseline.
//! * `report hotspots TRACE [--top N] [--baseline TRACE]` — ranks the
//!   numeric kernels (`mathkit.expm`, `grape.gradient`, …) by
//!   self-time from the trace's kernel-probe records, with per-matrix-
//!   dimension breakdowns (calls, p50/p90/p99) and an optional
//!   CURRENT-vs-BASELINE self-time diff.
//! * `report flame TRACE` — folds the span tree and kernel call sites
//!   into collapsed-stack lines (`frame;frame value`, value =
//!   self-microseconds) for inferno / speedscope / flamegraph.pl.
//!   Kernel sites ride only in JSONL traces; Chrome exports fold spans
//!   alone.
//!
//! Schema gating: traces and bench files written by a *newer* revision
//! (JSONL `trace_meta.trace_schema`, Chrome `paqocTraceSchema`, bench
//! `schema_version`) are rejected with a clear message and a non-zero
//! exit instead of being silently misread.

use paqoc_telemetry::json::{self, Value};
use paqoc_telemetry::{KernelSite, Snapshot, SpanRecord, TRACE_SCHEMA};
use std::collections::BTreeMap;

/// Newest `BENCH_pipeline.json` schema this tool understands (matches
/// `SCHEMA_VERSION` in the bench binary).
const MAX_BENCH_SCHEMA: u64 = 6;

/// Relative tolerance for deterministic float columns: analytic pulses
/// are a pure function of the input, so anything past rounding noise is
/// a real behaviour change.
const FLOAT_RTOL: f64 = 1e-6;

/// Per-benchmark columns that must match exactly between runs.
const HARD_COUNT_KEYS: [&str; 11] = [
    "latency_dt",
    "physical_gates",
    "num_groups",
    "pulses_generated",
    "cache_hits",
    "store_hits",
    "search_iterations",
    "preprocess_merges",
    "criticality_merges",
    "rejected_merges",
    "degradations",
];

/// Per-benchmark float columns gated at [`FLOAT_RTOL`].
const FLOAT_KEYS: [&str; 4] = ["esp", "latency_ns", "cost_units", "pulse_table_hit_rate"];

/// Top-level store-health columns (schema v4). Soft: reported when they
/// drift, never fatal — on-disk size and eviction/compaction counts
/// depend on what ran against the store before the bench did.
const SOFT_STORE_KEYS: [&str; 3] = ["store_bytes", "store_evictions", "store_compactions"];

/// A span record, unified across the JSONL and Chrome-trace formats.
struct SpanRec {
    id: u64,
    parent: Option<u64>,
    name: String,
    duration_ns: u64,
}

/// A journal event with its typed fields flattened to parsed JSON.
struct EventRec {
    name: String,
    fields: BTreeMap<String, Value>,
}

/// Per-(kernel, dimension) aggregate parsed back out of a trace.
#[derive(Clone, Copy, Default)]
struct KernelDimRow {
    calls: u64,
    total_ns: u64,
    self_ns: u64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
}

/// Per-kernel aggregate parsed back out of a trace.
#[derive(Clone, Default)]
struct KernelRow {
    calls: u64,
    total_ns: u64,
    self_ns: u64,
    allocs: u64,
    alloc_bytes: u64,
}

struct Trace {
    spans: Vec<SpanRec>,
    events: Vec<EventRec>,
    /// Kernel call sites (JSONL traces only; feeds `report flame`).
    kernel_sites: Vec<KernelSite>,
    /// Per-(kernel, dim) rows, from `kernel_dim` lines or Chrome
    /// kernel counter tracks.
    kernel_dims: BTreeMap<(String, u64), KernelDimRow>,
    /// Per-kernel totals, from `kernel_total` lines or summed Chrome
    /// counter tracks.
    kernel_totals: BTreeMap<String, KernelRow>,
}

fn num_u64(v: Option<&Value>) -> Option<u64> {
    v.and_then(Value::as_num)
        .filter(|n| n.is_finite() && *n >= 0.0)
        .map(|n| n as u64)
}

/// Loads a trace dump, auto-detecting the format: a single JSON object
/// with `traceEvents` is Chrome trace format, anything else is treated
/// as the JSONL journal export.
fn load_trace(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if let Ok(doc) = json::parse(text.trim()) {
        if let Some(Value::Arr(events)) = doc.get("traceEvents") {
            if let Some(v) = num_u64(doc.get("paqocTraceSchema")) {
                if v > TRACE_SCHEMA {
                    return Err(format!(
                        "{path}: trace schema v{v} is newer than this report understands \
                         (max v{TRACE_SCHEMA}) — rebuild report from the matching revision"
                    ));
                }
            }
            return Ok(from_chrome(events));
        }
    }
    from_jsonl(&text)
}

fn from_chrome(events: &[Value]) -> Trace {
    let mut spans = Vec::new();
    let mut journal = Vec::new();
    let mut kernel_dims: BTreeMap<(String, u64), KernelDimRow> = BTreeMap::new();
    let mut kernel_totals: BTreeMap<String, KernelRow> = BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).unwrap_or("");
        // Timestamps are microseconds with fractional nanoseconds.
        let ts_to_ns = |key: &str| -> u64 {
            e.get(key)
                .and_then(Value::as_num)
                .filter(|n| n.is_finite() && *n >= 0.0)
                .map(|us| (us * 1_000.0).round() as u64)
                .unwrap_or(0)
        };
        let name = e.get("name").and_then(Value::as_str).unwrap_or("");
        match ph {
            "X" => spans.push(SpanRec {
                id: num_u64(e.get("args").and_then(|a| a.get("id"))).unwrap_or(0),
                parent: num_u64(e.get("args").and_then(|a| a.get("parent"))),
                name: name.to_string(),
                duration_ns: ts_to_ns("dur"),
            }),
            "i" => {
                let fields = match e.get("args") {
                    Some(Value::Obj(map)) => map.clone(),
                    _ => BTreeMap::new(),
                };
                journal.push(EventRec {
                    name: name.to_string(),
                    fields,
                });
            }
            // The kernel counter tracks carry the raw (unsanitized)
            // kernel name in args, so hostile display names round-trip.
            "C" if e.get("cat").and_then(Value::as_str) == Some("kernel") => {
                let args = e.get("args");
                let get = |k: &str| num_u64(args.and_then(|a| a.get(k))).unwrap_or(0);
                let Some(kernel) = args.and_then(|a| a.get("kernel")).and_then(Value::as_str)
                else {
                    continue;
                };
                if args.and_then(|a| a.get("dim")).is_some() {
                    let row = kernel_dims
                        .entry((kernel.to_string(), get("dim")))
                        .or_default();
                    row.calls += get("calls");
                    row.total_ns += get("total_ns");
                    row.self_ns += get("self_ns");
                    let tot = kernel_totals.entry(kernel.to_string()).or_default();
                    tot.calls += get("calls");
                    tot.total_ns += get("total_ns");
                    tot.self_ns += get("self_ns");
                } else {
                    let tot = kernel_totals.entry(kernel.to_string()).or_default();
                    tot.allocs += get("allocs");
                    tot.alloc_bytes += get("alloc_bytes");
                }
            }
            _ => {}
        }
    }
    Trace {
        spans,
        events: journal,
        kernel_sites: Vec::new(),
        kernel_dims,
        kernel_totals,
    }
}

fn from_jsonl(text: &str) -> Result<Trace, String> {
    let mut spans = Vec::new();
    let mut journal = Vec::new();
    let mut kernel_sites = Vec::new();
    let mut kernel_dims: BTreeMap<(String, u64), KernelDimRow> = BTreeMap::new();
    let mut kernel_totals: BTreeMap<String, KernelRow> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        match v.get("type").and_then(Value::as_str) {
            Some("span") => spans.push(SpanRec {
                id: num_u64(v.get("id")).unwrap_or(0),
                parent: num_u64(v.get("parent")),
                name: v
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                duration_ns: num_u64(v.get("duration_ns")).unwrap_or(0),
            }),
            Some("event") => {
                let fields = match v.get("fields") {
                    Some(Value::Obj(map)) => map.clone(),
                    _ => BTreeMap::new(),
                };
                journal.push(EventRec {
                    name: v
                        .get("name")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string(),
                    fields,
                });
            }
            Some("trace_meta") => {
                if let Some(schema) = num_u64(v.get("trace_schema")) {
                    if schema > TRACE_SCHEMA {
                        return Err(format!(
                            "trace schema v{schema} is newer than this report understands \
                             (max v{TRACE_SCHEMA}) — rebuild report from the matching revision"
                        ));
                    }
                }
            }
            Some("kernel") => {
                let name = v.get("name").and_then(Value::as_str).unwrap_or("");
                let parent = v.get("parent").and_then(Value::as_str).map(|p| {
                    (
                        p.to_string(),
                        num_u64(v.get("parent_dim")).unwrap_or(0) as u32,
                    )
                });
                kernel_sites.push(KernelSite {
                    span: num_u64(v.get("span")),
                    parent,
                    name: name.to_string(),
                    dim: num_u64(v.get("dim")).unwrap_or(0) as u32,
                    calls: num_u64(v.get("calls")).unwrap_or(0),
                    total_ns: num_u64(v.get("total_ns")).unwrap_or(0),
                });
            }
            Some("kernel_dim") => {
                let name = v.get("name").and_then(Value::as_str).unwrap_or("");
                let key = (name.to_string(), num_u64(v.get("dim")).unwrap_or(0));
                let row = kernel_dims.entry(key).or_default();
                row.calls += num_u64(v.get("calls")).unwrap_or(0);
                row.total_ns += num_u64(v.get("total_ns")).unwrap_or(0);
                row.self_ns += num_u64(v.get("self_ns")).unwrap_or(0);
                row.p50_ns = row.p50_ns.max(num_u64(v.get("p50_ns")).unwrap_or(0));
                row.p90_ns = row.p90_ns.max(num_u64(v.get("p90_ns")).unwrap_or(0));
                row.p99_ns = row.p99_ns.max(num_u64(v.get("p99_ns")).unwrap_or(0));
            }
            Some("kernel_total") => {
                let name = v.get("name").and_then(Value::as_str).unwrap_or("");
                let row = kernel_totals.entry(name.to_string()).or_default();
                row.calls += num_u64(v.get("calls")).unwrap_or(0);
                row.total_ns += num_u64(v.get("total_ns")).unwrap_or(0);
                row.self_ns += num_u64(v.get("self_ns")).unwrap_or(0);
                row.allocs += num_u64(v.get("allocs")).unwrap_or(0);
                row.alloc_bytes += num_u64(v.get("alloc_bytes")).unwrap_or(0);
            }
            _ => {}
        }
    }
    Ok(Trace {
        spans,
        events: journal,
        kernel_sites,
        kernel_dims,
        kernel_totals,
    })
}

/// `report jobs`: the slowest executor jobs by their `wall_us` field.
fn cmd_jobs(trace: &Trace, top: usize) {
    let mut jobs: Vec<&EventRec> = trace
        .events
        .iter()
        .filter(|e| e.name == "exec.job" && e.fields.contains_key("wall_us"))
        .collect();
    if jobs.is_empty() {
        println!("report: no exec.job events with wall_us in this trace");
        println!("(run with telemetry enabled, e.g. PAQOC_TRACE=trace.jsonl profile qaoa)");
        return;
    }
    jobs.sort_by(|a, b| {
        let wa = num_u64(a.fields.get("wall_us")).unwrap_or(0);
        let wb = num_u64(b.fields.get("wall_us")).unwrap_or(0);
        wb.cmp(&wa)
    });
    println!(
        "{:>4} {:>12} {:>8} {:>6} {:>14} {:<12}",
        "#", "wall_ms", "worker", "arity", "priority", "outcome"
    );
    for (rank, e) in jobs.iter().take(top).enumerate() {
        let wall_us = num_u64(e.fields.get("wall_us")).unwrap_or(0);
        println!(
            "{:>4} {:>12.3} {:>8} {:>6} {:>14.1} {:<12}",
            rank + 1,
            wall_us as f64 / 1_000.0,
            num_u64(e.fields.get("worker")).unwrap_or(0),
            num_u64(e.fields.get("arity")).unwrap_or(0),
            e.fields
                .get("priority")
                .and_then(Value::as_num)
                .unwrap_or(0.0),
            e.fields
                .get("outcome")
                .and_then(Value::as_str)
                .unwrap_or("?"),
        );
    }
    println!("({} exec.job events total)", jobs.len());
}

/// `report phases`: per-span-name totals with self time (duration minus
/// direct children), plus the longest root-to-leaf chain.
fn cmd_phases(trace: &Trace) {
    if trace.spans.is_empty() {
        println!("report: no spans in this trace (is tracing enabled?)");
        return;
    }
    // Sum of each parent's direct children, for self-time.
    let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for s in &trace.spans {
        if let Some(p) = s.parent {
            *child_ns.entry(p).or_insert(0) += s.duration_ns;
        }
    }
    let known: std::collections::HashSet<u64> = trace.spans.iter().map(|s| s.id).collect();
    let mut agg: BTreeMap<&str, (usize, u64, u64)> = BTreeMap::new();
    let mut root_total = 0u64;
    for s in &trace.spans {
        let self_ns = s
            .duration_ns
            .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        let entry = agg.entry(s.name.as_str()).or_insert((0, 0, 0));
        entry.0 += 1;
        entry.1 += s.duration_ns;
        entry.2 += self_ns;
        if s.parent.is_none_or(|p| !known.contains(&p)) {
            root_total += s.duration_ns;
        }
    }
    let mut rows: Vec<(&str, usize, u64, u64)> =
        agg.into_iter().map(|(k, v)| (k, v.0, v.1, v.2)).collect();
    rows.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(b.0)));
    println!(
        "{:<32} {:>8} {:>12} {:>12} {:>7}",
        "phase", "count", "total_ms", "self_ms", "self%"
    );
    for (name, count, total, self_ns) in &rows {
        let share = if root_total == 0 {
            0.0
        } else {
            100.0 * *self_ns as f64 / root_total as f64
        };
        println!(
            "{:<32} {:>8} {:>12.3} {:>12.3} {:>6.1}%",
            name,
            count,
            *total as f64 / 1e6,
            *self_ns as f64 / 1e6,
            share
        );
    }

    // Critical path: from the longest root, repeatedly descend into the
    // longest direct child.
    let mut current = trace
        .spans
        .iter()
        .filter(|s| s.parent.is_none_or(|p| !known.contains(&p)))
        .max_by_key(|s| s.duration_ns);
    println!("\ncritical path (longest child chain):");
    let mut depth = 0;
    while let Some(span) = current {
        println!(
            "{:indent$}{} — {:.3} ms",
            "",
            span.name,
            span.duration_ns as f64 / 1e6,
            indent = depth * 2
        );
        depth += 1;
        current = trace
            .spans
            .iter()
            .filter(|s| s.parent == Some(span.id))
            .max_by_key(|s| s.duration_ns);
    }
}

/// `report workers`: per-worker utilization aggregated over every
/// `exec.worker` event (one per worker per batch), plus stalls.
fn cmd_workers(trace: &Trace) {
    #[derive(Default)]
    struct Acc {
        batches: usize,
        jobs: u64,
        steals: u64,
        busy_us: u64,
        idle_us: u64,
        steal_us: u64,
        wall_us: u64,
    }
    let mut per_worker: BTreeMap<u64, Acc> = BTreeMap::new();
    for e in trace.events.iter().filter(|e| e.name == "exec.worker") {
        let get = |k: &str| num_u64(e.fields.get(k)).unwrap_or(0);
        let acc = per_worker.entry(get("worker")).or_default();
        acc.batches += 1;
        acc.jobs += get("jobs");
        acc.steals += get("steals");
        acc.busy_us += get("busy_us");
        acc.idle_us += get("idle_us");
        acc.steal_us += get("steal_us");
        acc.wall_us += get("wall_us");
    }
    if per_worker.is_empty() {
        println!("report: no exec.worker events in this trace");
        return;
    }
    println!(
        "{:>6} {:>8} {:>6} {:>7} {:>12} {:>12} {:>12} {:>12} {:>6}",
        "worker", "batches", "jobs", "steals", "busy_ms", "idle_ms", "steal_ms", "wall_ms", "util"
    );
    for (worker, acc) in &per_worker {
        let util = if acc.wall_us == 0 {
            0.0
        } else {
            100.0 * acc.busy_us as f64 / acc.wall_us as f64
        };
        println!(
            "{:>6} {:>8} {:>6} {:>7} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>5.1}%",
            worker,
            acc.batches,
            acc.jobs,
            acc.steals,
            acc.busy_us as f64 / 1e3,
            acc.idle_us as f64 / 1e3,
            acc.steal_us as f64 / 1e3,
            acc.wall_us as f64 / 1e3,
            util
        );
    }
    let stalls: Vec<&EventRec> = trace
        .events
        .iter()
        .filter(|e| e.name == "exec.stall")
        .collect();
    println!("\nstalls flagged: {}", stalls.len());
    for e in stalls.iter().take(10) {
        println!(
            "  worker {} key {} — {} ms elapsed vs {} ms budget",
            num_u64(e.fields.get("worker")).unwrap_or(0),
            e.fields.get("key").and_then(Value::as_str).unwrap_or("?"),
            num_u64(e.fields.get("elapsed_ms")).unwrap_or(0),
            num_u64(e.fields.get("budget_ms")).unwrap_or(0),
        );
    }
}

/// `report hotspots`: kernels ranked by self-time, with per-dimension
/// breakdowns and an optional baseline-trace diff.
fn cmd_hotspots(trace: &Trace, baseline: Option<&Trace>, top: usize) {
    if trace.kernel_totals.is_empty() {
        println!("report: no kernel-probe data in this trace");
        println!(
            "(build with the default `kernel-probes` feature and run with \
             PAQOC_KERNEL_PROBES=1 or tracing enabled, e.g. PAQOC_TRACE=trace.jsonl)"
        );
        return;
    }
    let mut rows: Vec<(&String, &KernelRow)> = trace.kernel_totals.iter().collect();
    rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));
    let total_self: u64 = rows.iter().map(|(_, r)| r.self_ns).sum();
    println!(
        "{:<24} {:>10} {:>11} {:>11} {:>6} {:>8} {:>10}{}",
        "kernel",
        "calls",
        "self_ms",
        "total_ms",
        "self%",
        "allocs",
        "alloc_kb",
        if baseline.is_some() {
            format!("  {:>11} {:>8}", "base_ms", "delta")
        } else {
            String::new()
        }
    );
    for (name, row) in rows.iter().take(top) {
        let share = if total_self == 0 {
            0.0
        } else {
            100.0 * row.self_ns as f64 / total_self as f64
        };
        let diff = baseline
            .map(|b| match b.kernel_totals.get(*name) {
                Some(base) if base.self_ns > 0 => {
                    let rel = (row.self_ns as f64 - base.self_ns as f64) / base.self_ns as f64;
                    format!(
                        "  {:>11.3} {:>+7.1}%",
                        base.self_ns as f64 / 1e6,
                        rel * 100.0
                    )
                }
                _ => format!("  {:>11} {:>8}", "-", "new"),
            })
            .unwrap_or_default();
        println!(
            "{:<24} {:>10} {:>11.3} {:>11.3} {:>5.1}% {:>8} {:>10.1}{diff}",
            name,
            row.calls,
            row.self_ns as f64 / 1e6,
            row.total_ns as f64 / 1e6,
            share,
            row.allocs,
            row.alloc_bytes as f64 / 1024.0,
        );
        for ((dim_name, dim), d) in &trace.kernel_dims {
            if dim_name != *name {
                continue;
            }
            println!(
                "  {:<22} {:>10} {:>11.3} {:>11.3}        p50/p90/p99 {:.1}/{:.1}/{:.1} us",
                format!("{dim}x{dim}"),
                d.calls,
                d.self_ns as f64 / 1e6,
                d.total_ns as f64 / 1e6,
                d.p50_ns as f64 / 1e3,
                d.p90_ns as f64 / 1e3,
                d.p99_ns as f64 / 1e3,
            );
        }
    }
    if let Some(b) = baseline {
        for (name, base) in &b.kernel_totals {
            if !trace.kernel_totals.contains_key(name) {
                println!(
                    "{:<24} gone (baseline self {:.3} ms)",
                    name,
                    base.self_ns as f64 / 1e6
                );
            }
        }
    }
    println!(
        "({} kernel(s), {:.3} ms total self time)",
        rows.len(),
        total_self as f64 / 1e6
    );
}

/// `report flame`: collapsed-stack export of the span tree plus kernel
/// call sites, for inferno / speedscope / flamegraph.pl.
fn cmd_flame(trace: &Trace) {
    let snap = Snapshot {
        spans: trace
            .spans
            .iter()
            .map(|s| SpanRecord {
                id: s.id,
                parent: s.parent,
                name: s.name.clone(),
                thread: 0,
                start_ns: 0,
                duration_ns: s.duration_ns,
            })
            .collect(),
        counters: BTreeMap::new(),
        gauges: BTreeMap::new(),
        histograms: BTreeMap::new(),
        events: Vec::new(),
        events_dropped: 0,
        kernel_sites: trace.kernel_sites.clone(),
        kernels: BTreeMap::new(),
    };
    let folded = snap.to_collapsed_stacks();
    if folded.is_empty() {
        eprintln!(
            "report: nothing to fold — no spans or kernel sites in this trace \
             (kernel sites ride only in JSONL exports)"
        );
        return;
    }
    print!("{folded}");
}

fn load_bench(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = json::parse(text.trim()).map_err(|e| format!("{path} does not parse: {e}"))?;
    if let Some(schema) = num_u64(doc.get("schema_version")) {
        if schema > MAX_BENCH_SCHEMA {
            return Err(format!(
                "{path}: bench schema v{schema} is newer than this report understands \
                 (max v{MAX_BENCH_SCHEMA}) — rebuild report from the matching revision"
            ));
        }
    }
    Ok(doc)
}

fn bench_map(doc: &Value) -> Result<BTreeMap<&str, &Value>, String> {
    let Some(Value::Arr(benches)) = doc.get("benchmarks") else {
        return Err("'benchmarks' is not an array".to_string());
    };
    let mut map = BTreeMap::new();
    for b in benches {
        let Some(name) = b.get("name").and_then(Value::as_str) else {
            return Err("benchmark row without a 'name'".to_string());
        };
        map.insert(name, b);
    }
    Ok(map)
}

/// `report compare`: gates `current` against `baseline`. Returns the
/// process exit code.
fn cmd_compare(current_path: &str, baseline_path: &str, counts_only: bool, wall_tol: f64) -> i32 {
    let (current, baseline) = match (load_bench(current_path), load_bench(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("report: {e}");
            return 1;
        }
    };
    let schema = |d: &Value| d.get("schema_version").and_then(Value::as_num);
    if schema(&current) != schema(&baseline) {
        eprintln!(
            "report: schema_version mismatch ({:?} vs {:?}) — regenerate the baseline",
            schema(&current),
            schema(&baseline)
        );
        return 1;
    }
    // A baseline from a different device backend is not a perf
    // regression signal — every count and latency legitimately differs.
    // Hard-fail so a stale baseline cannot masquerade as a regression.
    // Pre-v6 files carry no `backend` key and are implicitly the
    // transmon grid.
    let backend = |d: &Value| {
        d.get("backend")
            .and_then(Value::as_str)
            .unwrap_or("transmon-grid")
            .to_string()
    };
    let (cur_backend, base_backend) = (backend(&current), backend(&baseline));
    if cur_backend != base_backend {
        eprintln!(
            "report: cross-backend comparison refused: {current_path} is {cur_backend:?} but \
             {baseline_path} is {base_backend:?} — regenerate the baseline on the same backend"
        );
        return 1;
    }
    let (cur_map, base_map) = match (bench_map(&current), bench_map(&baseline)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("report: {e}");
            return 1;
        }
    };

    let mut failures = 0usize;
    let mut compared = 0usize;
    for (name, cur) in &cur_map {
        let Some(base) = base_map.get(name) else {
            eprintln!("report: FAIL {name}: not present in baseline {baseline_path}");
            failures += 1;
            continue;
        };
        compared += 1;
        let mut drifts: Vec<String> = Vec::new();
        for key in HARD_COUNT_KEYS {
            let c = cur.get(key).and_then(Value::as_num);
            let b = base.get(key).and_then(Value::as_num);
            if c != b {
                drifts.push(format!("{key} {b:?} -> {c:?}"));
            }
        }
        for key in FLOAT_KEYS {
            let c = cur.get(key).and_then(Value::as_num).unwrap_or(f64::NAN);
            let b = base.get(key).and_then(Value::as_num).unwrap_or(f64::NAN);
            let scale = b.abs().max(c.abs()).max(1e-12);
            if !(c - b).abs().is_finite() || (c - b).abs() / scale > FLOAT_RTOL {
                drifts.push(format!("{key} {b} -> {c}"));
            }
        }
        // Wall time is machine- and load-dependent: always reported,
        // fatal only past the tolerance (and never with --counts-only).
        let wall_note = match (
            base.get("wall_seconds").and_then(Value::as_num),
            cur.get("wall_seconds").and_then(Value::as_num),
        ) {
            (Some(b), Some(c)) if b > 0.0 => {
                let rel = (c - b) / b;
                if rel > wall_tol && !counts_only {
                    drifts.push(format!(
                        "wall_seconds {b:.3} -> {c:.3} (+{:.0}% > {:.0}% tolerance)",
                        rel * 100.0,
                        wall_tol * 100.0
                    ));
                    String::new()
                } else {
                    format!("  wall {b:.3}s -> {c:.3}s ({:+.0}%)", rel * 100.0)
                }
            }
            _ => String::new(),
        };
        // Kernel self-time is machine- and schedule-dependent: the
        // totals are shown for orientation, never gated (soft column).
        let kernel_total = |v: &Value| -> f64 {
            match v.get("kernel_ns") {
                Some(Value::Obj(map)) => map.values().filter_map(Value::as_num).sum(),
                _ => 0.0,
            }
        };
        let (kb, kc) = (kernel_total(base), kernel_total(cur));
        let kernel_note = if kb > 0.0 && kc > 0.0 {
            format!("  kernel {:.1}ms -> {:.1}ms (soft)", kb / 1e6, kc / 1e6)
        } else {
            String::new()
        };
        if drifts.is_empty() {
            println!("report: ok   {name}{wall_note}{kernel_note}");
        } else {
            eprintln!("report: FAIL {name}: {}", drifts.join("; "));
            failures += 1;
        }
    }
    // Store health is informational: the store's on-disk state depends
    // on run history, not on this change set, so drift is printed but
    // never gates.
    for key in SOFT_STORE_KEYS {
        let c = current.get(key).and_then(Value::as_num);
        let b = baseline.get(key).and_then(Value::as_num);
        if let (Some(c), Some(b)) = (c, b) {
            if c != b {
                println!("report: note {key} {b} -> {c} (soft column, not gated)");
            }
        }
    }
    let skipped = base_map.len().saturating_sub(compared);
    if skipped > 0 {
        println!("report: {skipped} baseline benchmark(s) not in current run (skipped)");
    }
    if compared == 0 && failures == 0 {
        eprintln!("report: FAIL: no benchmarks in common between the two files");
        return 1;
    }
    if failures > 0 {
        eprintln!(
            "report: compare FAILED: {failures}/{} benchmark(s) drifted",
            cur_map.len()
        );
        1
    } else {
        println!(
            "report: compare OK ({compared} benchmark(s) match baseline{})",
            if counts_only { ", counts only" } else { "" }
        );
        0
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: report jobs TRACE [--top N]\n\
         \x20      report phases TRACE\n\
         \x20      report workers TRACE\n\
         \x20      report hotspots TRACE [--top N] [--baseline TRACE]\n\
         \x20      report flame TRACE\n\
         \x20      report compare CURRENT BASELINE [--counts-only] [--wall-tolerance X]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
    };
    match cmd.as_str() {
        "jobs" | "phases" | "workers" | "hotspots" | "flame" => {
            let Some(path) = args.get(1) else { usage() };
            let mut top = 10usize;
            let mut baseline: Option<String> = None;
            let mut rest = args[2..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--top" => match rest.next().and_then(|v| v.parse::<usize>().ok()) {
                        Some(n) if n > 0 => top = n,
                        _ => usage(),
                    },
                    "--baseline" if cmd == "hotspots" => match rest.next() {
                        Some(p) => baseline = Some(p.clone()),
                        None => usage(),
                    },
                    _ => usage(),
                }
            }
            let load = |p: &str| match load_trace(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("report: {e}");
                    std::process::exit(1);
                }
            };
            let trace = load(path);
            match cmd.as_str() {
                "jobs" => cmd_jobs(&trace, top),
                "phases" => cmd_phases(&trace),
                "hotspots" => {
                    let base = baseline.as_deref().map(load);
                    cmd_hotspots(&trace, base.as_ref(), top);
                }
                "flame" => cmd_flame(&trace),
                _ => cmd_workers(&trace),
            }
        }
        "compare" => {
            let (Some(current), Some(baseline)) = (args.get(1), args.get(2)) else {
                usage();
            };
            let mut counts_only = false;
            let mut wall_tol = 0.5f64;
            let mut rest = args[3..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--counts-only" => counts_only = true,
                    "--wall-tolerance" => match rest.next().and_then(|v| v.parse::<f64>().ok()) {
                        Some(x) if x > 0.0 => wall_tol = x,
                        _ => usage(),
                    },
                    _ => usage(),
                }
            }
            std::process::exit(cmd_compare(current, baseline, counts_only, wall_tol));
        }
        _ => usage(),
    }
}
