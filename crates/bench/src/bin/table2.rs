//! Regenerates Table II: whole-circuit fidelity from *pulse simulation*
//! (the paper uses QuTiP; we re-propagate every generated pulse through
//! the Schrödinger equation and compose the realized unitaries).
//!
//! Real GRAPE pulse generation for every distinct customized gate is
//! expensive, so by default the two smallest benchmarks (simon, bb84)
//! run with full GRAPE + pulse simulation, and the remaining four Table
//! II benchmarks report the analytic ESP column for all five configs.
//! Pass `--full` to pulse-simulate everything (slow).

use paqoc_bench::{evaluate_all_configs, CONFIG_NAMES};
use paqoc_circuit::{combined_unitary, Circuit};
use paqoc_core::{compile, PipelineOptions};
use paqoc_device::{Device, PulseSource};
use paqoc_grape::{circuit_pulse_fidelity, propagate, GrapeSource, ScheduledUnitary};
use paqoc_workloads::benchmark;
use std::collections::BTreeSet;

/// Compiles with PAQOC(M=0) using real GRAPE pulses and pulse-simulates
/// the whole schedule against the routed physical circuit's unitary.
///
/// Routing happens on a line device of the same width so the register
/// stays small enough to simulate while every two-qubit gate sits on a
/// real coupler (GRAPE cannot drive interaction between uncoupled
/// qubits).
fn pulse_simulated_fidelity(circuit: &Circuit, _device: &Device) -> f64 {
    let device = Device::line(circuit.num_qubits());
    let mut grape = GrapeSource::fast();
    let opts = PipelineOptions::m0();
    let r = compile(circuit, &device, &mut grape, &opts);

    let ideal = r.physical.unitary();
    let mut schedule = Vec::new();
    for id in r.grouped.topological_order() {
        let group = r.grouped.group(id);
        let qubits: Vec<usize> = group
            .instructions
            .iter()
            .flat_map(|i| i.qubits().iter().copied())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        // The pulse table may have satisfied this group from a
        // canonically equivalent (qubit-permuted) entry, in which case
        // the GRAPE source never saw this exact signature — generate it
        // now (a cache hit when it was seen, a real run otherwise).
        let _ = grape.generate(&group.instructions, &device, 0.99, None);
        let pulse = grape
            .cached_pulse(&group.instructions)
            .expect("pulse generated on demand")
            .clone();
        let controls = device.controls_for(&qubits);
        let realized = propagate(&pulse, &controls);
        // Sanity: the realized pulse matches the group's unitary.
        let target = combined_unitary(&group.instructions, &qubits);
        let f = paqoc_math::trace_fidelity(&target, &realized);
        assert!(f > 0.95, "pulse drifted from its target: {f}");
        schedule.push(ScheduledUnitary {
            unitary: realized,
            qubits,
        });
    }
    circuit_pulse_fidelity(&schedule, &ideal, circuit.num_qubits())
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let device = Device::grid5x5();
    let names = [
        "4gt10-v1_81",
        "decod24-v1_41",
        "hwb4_49",
        "rd32_270",
        "bb84",
        "simon",
    ];

    println!("=== Table II: quality of execution (larger is better) ===");
    println!("\n-- ESP under all five configurations (analytic source) --");
    print!("{:<15}", "benchmark");
    for n in CONFIG_NAMES {
        print!("{n:>16}");
    }
    println!();
    for name in names {
        let c = (benchmark(name).expect(name).build)();
        let o = evaluate_all_configs(&c, &device);
        print!("{name:<15}");
        for cfg in o.iter().take(5) {
            print!("{:>15.2}%", cfg.esp * 100.0);
        }
        println!();
    }

    println!("\n-- Schrödinger pulse simulation (real GRAPE, paqoc M=0) --");
    let simulated: Vec<&str> = if full {
        names.to_vec()
    } else {
        vec!["simon", "bb84"]
    };
    for name in simulated {
        let c = (benchmark(name).expect(name).build)();
        if c.num_qubits() > 10 {
            println!("{name:<15} skipped (register too large to simulate)");
            continue;
        }
        let f = pulse_simulated_fidelity(&c, &device);
        println!(
            "{name:<15} pulse-simulated circuit fidelity = {:.2}%",
            f * 100.0
        );
    }
}
