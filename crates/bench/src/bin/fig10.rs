//! Regenerates Fig. 10: whole-circuit pulse latency of the seventeen
//! benchmarks under all five configurations, normalized to accqoc_n3d3.
//! The paper reports paqoc(M=0) averaging a 54% reduction and
//! paqoc(M=inf) a 40% reduction.

use paqoc_bench::{evaluate_all_configs, print_normalized};
use paqoc_device::Device;
use paqoc_workloads::all_benchmarks;

fn main() {
    let device = Device::grid5x5();
    let rows: Vec<_> = all_benchmarks()
        .into_iter()
        .map(|b| {
            let c = (b.build)();
            eprintln!("compiling {} ...", b.name);
            (b.name.to_string(), evaluate_all_configs(&c, &device))
        })
        .collect();
    print_normalized(
        "Fig. 10: circuit latency",
        &rows,
        |o| o.latency_dt as f64,
        true,
    );
    println!("\nabsolute latencies (dt):");
    for (name, o) in &rows {
        println!(
            "{name:<15} {:>10} {:>10} {:>10} {:>10} {:>10}",
            o[0].latency_dt, o[1].latency_dt, o[2].latency_dt, o[3].latency_dt, o[4].latency_dt
        );
    }
}
