//! Regenerates Fig. 6: merged vs summed latency of ≤3-qubit subcircuits
//! extracted from the 150-benchmark corpus. Every point must fall below
//! the x = y diagonal (Observation 1), and points stratify by qubit
//! count (Observation 2). Pass `--grape N` to cross-validate N of the
//! smallest subcircuits with real GRAPE instead of the analytic model.

use paqoc_device::{AnalyticModel, Device, PulseSource};
use paqoc_workloads::{corpus, extract_subcircuits};
use std::collections::BTreeSet;

fn main() {
    let grape_n: usize = std::env::args()
        .skip_while(|a| a != "--grape")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let device = Device::grid5x5();
    let mut model = AnalyticModel::new();
    let circuits = corpus(150, 2023);
    println!("=== Fig. 6: merged vs summed subcircuit latency (dt) ===");
    println!(
        "{:>4} {:>10} {:>10} {:>7} {:>6}",
        "#q", "sum_dt", "merged_dt", "ratio", "gates"
    );

    let mut below = 0usize;
    let mut total = 0usize;
    let mut per_qubit_max: [u64; 4] = [0; 4];
    for c in &circuits {
        for run in extract_subcircuits(c, 3) {
            let qubits: BTreeSet<usize> = run
                .iter()
                .flat_map(|i| i.qubits().iter().copied())
                .collect();
            let merged = model.generate(&run, &device, 0.999, None);
            let sum: u64 = run
                .iter()
                .map(|i| {
                    model
                        .generate(std::slice::from_ref(i), &device, 0.999, None)
                        .latency_dt
                })
                .sum();
            total += 1;
            if merged.latency_dt <= sum {
                below += 1;
            }
            let nq = qubits.len().min(3);
            per_qubit_max[nq] = per_qubit_max[nq].max(merged.latency_dt);
            if total <= 40 {
                println!(
                    "{:>4} {:>10} {:>10} {:>7.2} {:>6}",
                    nq,
                    sum,
                    merged.latency_dt,
                    merged.latency_dt as f64 / sum.max(1) as f64,
                    run.len()
                );
            }
        }
    }
    println!("... ({total} subcircuits total; first 40 shown)");
    println!(
        "Observation 1: {below}/{total} merged points at or below the x=y line ({:.1}%)",
        100.0 * below as f64 / total as f64
    );
    println!(
        "Observation 2: max merged latency by qubit count: 1q={} dt, 2q={} dt, 3q={} dt",
        per_qubit_max[1], per_qubit_max[2], per_qubit_max[3]
    );

    if grape_n > 0 {
        println!("\n-- GRAPE cross-validation on {grape_n} small subcircuits --");
        let mut grape = paqoc_grape::GrapeSource::fast();
        let mut done = 0;
        'outer: for c in &circuits {
            for run in extract_subcircuits(c, 2) {
                if run.len() > 3 {
                    continue;
                }
                let merged = grape.generate(&run, &device, 0.99, None);
                let sum: u64 = run
                    .iter()
                    .map(|i| {
                        grape
                            .generate(std::slice::from_ref(i), &device, 0.99, None)
                            .latency_dt
                    })
                    .sum();
                println!(
                    "grape: sum={} dt merged={} dt ratio={:.2}",
                    sum,
                    merged.latency_dt,
                    merged.latency_dt as f64 / sum.max(1) as f64
                );
                done += 1;
                if done >= grape_n {
                    break 'outer;
                }
            }
        }
    }
}
