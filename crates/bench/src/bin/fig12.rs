//! Regenerates Fig. 12: ESP (estimated success probability, Eq. 2)
//! improvement of each configuration normalized to accqoc_n3d3.
//! The paper: paqoc(M=0) best, averaging +27%.

use paqoc_bench::{evaluate_all_configs, print_normalized};
use paqoc_device::Device;
use paqoc_workloads::all_benchmarks;

fn main() {
    let device = Device::grid5x5();
    let rows: Vec<_> = all_benchmarks()
        .into_iter()
        .map(|b| {
            let c = (b.build)();
            eprintln!("compiling {} ...", b.name);
            (b.name.to_string(), evaluate_all_configs(&c, &device))
        })
        .collect();
    print_normalized("Fig. 12: circuit ESP", &rows, |o| o.esp, false);
}
