use paqoc_accqoc::{compile_accqoc, AccqocOptions};
use paqoc_core::{compile, PipelineOptions};
use paqoc_device::{AnalyticModel, Device};
use paqoc_workloads::all_benchmarks;
use std::time::Instant;

fn main() {
    let device = Device::grid5x5();
    for b in all_benchmarks() {
        let c = (b.build)();
        let t0 = Instant::now();
        let mut s = AnalyticModel::new();
        let acc = compile_accqoc(&c, &device, &mut s, &AccqocOptions::n3d3());
        let t_acc = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let mut s = AnalyticModel::new();
        let m0 = compile(&c, &device, &mut s, &PipelineOptions::m0());
        let t_m0 = t1.elapsed().as_secs_f64();
        let t2 = Instant::now();
        let mut s = AnalyticModel::new();
        let mi = compile(&c, &device, &mut s, &PipelineOptions::m_inf());
        let t_mi = t2.elapsed().as_secs_f64();
        println!("{:<14} phys={:<5} acc: {}dt {:.1}s | m0: {}dt {:.1}s cost {:.0} | minf: {}dt {:.1}s cost {:.0}",
            b.name, m0.physical.len(), acc.latency_dt, t_acc, m0.latency_dt, t_m0, m0.stats.cost_units, mi.latency_dt, t_mi, mi.stats.cost_units);
    }
    // With PAQOC_TRACE set, dump the accumulated profile of the sweep.
    if paqoc_telemetry::enabled() {
        print!("{}", paqoc_telemetry::snapshot().render_report());
        if let Ok(Some(path)) = paqoc_telemetry::write_env_trace() {
            println!("trace written to {}", path.display());
        }
    }
}
