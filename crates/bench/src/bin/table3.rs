//! Regenerates Table III: the most and second-most frequent subcircuits
//! PAQOC's miner finds in bv, adder, qft, qaoa and supre — the paper's
//! qualitative claims: SWAP chains for bv/qft, MAJ/UMA fragments for
//! adder, the CPHASE skeleton for qaoa, input-dependent mixes for supre.

use paqoc_circuit::{decompose, Basis};
use paqoc_device::Device;
use paqoc_mapping::{sabre_map, SabreOptions};
use paqoc_mining::{mine_frequent_subcircuits, MinerOptions};
use paqoc_workloads::benchmark;

fn main() {
    let device = Device::grid5x5();
    println!("=== Table III: most frequent subcircuits found by the miner ===");
    for name in ["bv", "adder", "qft", "qaoa", "supre"] {
        let c = (benchmark(name).expect(name).build)();
        let lowered = decompose(&c, Basis::Extended);
        let mapped = sabre_map(&lowered, device.topology(), &SabreOptions::default());
        let physical = decompose(&mapped.circuit, Basis::Extended);
        let patterns = mine_frequent_subcircuits(&physical, &MinerOptions::default());
        println!(
            "\n{name} ({} physical gates, {} swaps inserted):",
            physical.len(),
            mapped.swaps_inserted
        );
        for (rank, p) in patterns.iter().take(3).enumerate() {
            println!(
                "  #{} ({} gates, {} qubits, support {}, coverage {}):",
                rank + 1,
                p.num_gates,
                p.num_qubits,
                p.support(),
                p.coverage()
            );
            println!("      {}", p.code);
        }
    }
}
