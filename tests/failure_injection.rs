//! Failure-injection tests: the pipeline must stay correct when the
//! pulse source misbehaves — adversarial latencies that violate the
//! observations, fidelity collapses, and pathological inputs.

use paqoc::circuit::{Circuit, Instruction};
use paqoc::core::{compile, PipelineOptions};
use paqoc::device::{AnalyticModel, Device, PulseEstimate, PulseSource};
use paqoc::workloads::benchmark;

/// A pulse source that *violates Observation 1*: every multi-gate group
/// costs a large constant more than the analytic model says, so merging
/// is (almost) never beneficial once real pulses land.
struct AntiMergeSource {
    inner: AnalyticModel,
}

impl PulseSource for AntiMergeSource {
    fn generate(
        &mut self,
        group: &[Instruction],
        device: &Device,
        target_fidelity: f64,
        warm_start: Option<f64>,
    ) -> PulseEstimate {
        let mut est = self
            .inner
            .generate(group, device, target_fidelity, warm_start);
        if group.len() > 1 {
            est.latency_ns += 500.0; // merged pulses are terrible here
            est.latency_dt = device.spec().ns_to_dt(est.latency_ns);
        }
        est
    }

    fn typical_latency_ns(&self, num_qubits: usize, device: &Device) -> f64 {
        self.inner.typical_latency_ns(num_qubits, device)
    }

    fn name(&self) -> &'static str {
        "anti-merge"
    }
}

/// A source whose fidelity collapses on three-qubit groups.
struct LowFidelity3q {
    inner: AnalyticModel,
}

impl PulseSource for LowFidelity3q {
    fn generate(
        &mut self,
        group: &[Instruction],
        device: &Device,
        target_fidelity: f64,
        warm_start: Option<f64>,
    ) -> PulseEstimate {
        let mut est = self
            .inner
            .generate(group, device, target_fidelity, warm_start);
        let qubits: std::collections::BTreeSet<usize> = group
            .iter()
            .flat_map(|i| i.qubits().iter().copied())
            .collect();
        if qubits.len() >= 3 {
            est.fidelity = 0.5;
        }
        est
    }

    fn typical_latency_ns(&self, num_qubits: usize, device: &Device) -> f64 {
        self.inner.typical_latency_ns(num_qubits, device)
    }

    fn name(&self) -> &'static str {
        "lowfid3q"
    }
}

fn covered_gates(r: &paqoc::core::CompilationResult) -> usize {
    r.grouped
        .group_ids()
        .into_iter()
        .map(|id| r.grouped.group(id).instructions.len())
        .sum()
}

#[test]
fn pipeline_survives_an_observation1_violation() {
    // Even when merged pulses are adversarially slow, compilation must
    // terminate, partition the circuit exactly, and produce pulses.
    let c = (benchmark("simon").expect("exists").build)();
    let device = Device::grid5x5();
    let mut source = AntiMergeSource {
        inner: AnalyticModel::new(),
    };
    let r = compile(&c, &device, &mut source, &PipelineOptions::m0());
    assert_eq!(covered_gates(&r), r.physical.len());
    assert!(r.latency_dt > 0);
    for id in r.grouped.group_ids() {
        assert!(r.grouped.group(id).latency_ns > 0.0);
    }
}

#[test]
fn fidelity_collapse_shows_up_in_esp_not_in_a_crash() {
    let c = (benchmark("rd32_270").expect("exists").build)();
    let device = Device::grid5x5();
    let mut bad = LowFidelity3q {
        inner: AnalyticModel::new(),
    };
    let r_bad = compile(&c, &device, &mut bad, &PipelineOptions::m0());
    let mut good = AnalyticModel::new();
    let r_good = compile(&c, &device, &mut good, &PipelineOptions::m0());
    assert_eq!(covered_gates(&r_bad), r_bad.physical.len());
    // If any 3-qubit customized gate exists, the bad source's ESP must
    // be visibly lower; either way it can never exceed the good ESP.
    assert!(r_bad.esp <= r_good.esp + 1e-12);
    let has_3q = r_bad
        .grouped
        .group_ids()
        .into_iter()
        .any(|id| r_bad.grouped.group(id).qubits.len() >= 3);
    if has_3q {
        assert!(
            r_bad.esp < 0.9 * r_good.esp,
            "{} vs {}",
            r_bad.esp,
            r_good.esp
        );
    }
}

#[test]
fn empty_and_single_gate_circuits_compile() {
    let device = Device::grid5x5();
    let mut source = AnalyticModel::new();
    let empty = Circuit::new(3);
    let r = compile(&empty, &device, &mut source, &PipelineOptions::m_inf());
    assert_eq!(r.num_groups(), 0);
    assert_eq!(r.latency_dt, 0);
    assert!((r.esp - 1.0).abs() < 1e-12);

    let mut one = Circuit::new(2);
    one.cx(0, 1);
    let r1 = compile(&one, &device, &mut source, &PipelineOptions::m0());
    assert_eq!(r1.num_groups(), 1);
    assert!(r1.latency_dt > 0);
}

#[test]
fn single_qubit_only_circuit_compiles() {
    // bb84 has no 2-qubit gates at all: no couplers ever enter play.
    let c = (benchmark("bb84").expect("exists").build)();
    let device = Device::grid5x5();
    let mut source = AnalyticModel::new();
    let r = compile(&c, &device, &mut source, &PipelineOptions::m_tuned());
    assert_eq!(covered_gates(&r), r.physical.len());
    assert!(r.esp > 0.99);
}

#[test]
fn wide_circuit_on_exact_capacity_compiles() {
    // 25 qubits on the 25-qubit grid: no spare room for the mapper.
    let mut c = Circuit::new(25);
    for q in 0..25 {
        c.h(q);
    }
    for q in 0..24 {
        c.cx(q, q + 1);
    }
    let device = Device::grid5x5();
    let mut source = AnalyticModel::new();
    let r = compile(&c, &device, &mut source, &PipelineOptions::m0());
    assert_eq!(covered_gates(&r), r.physical.len());
}
