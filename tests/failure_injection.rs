//! Failure-injection tests: the pipeline must stay correct when the
//! pulse source misbehaves — adversarial latencies that violate the
//! observations, fidelity collapses, and pathological inputs.

use std::time::Duration;

use paqoc::circuit::{Circuit, Instruction};
use paqoc::core::{compile, try_compile, CompileError, Degradation, PipelineOptions};
use paqoc::device::{AnalyticModel, Device, FaultConfig, FaultySource, PulseEstimate, PulseSource};
use paqoc::workloads::{all_benchmarks, benchmark};

/// A pulse source that *violates Observation 1*: every multi-gate group
/// costs a large constant more than the analytic model says, so merging
/// is (almost) never beneficial once real pulses land.
struct AntiMergeSource {
    inner: AnalyticModel,
}

impl PulseSource for AntiMergeSource {
    fn generate(
        &mut self,
        group: &[Instruction],
        device: &Device,
        target_fidelity: f64,
        warm_start: Option<f64>,
    ) -> PulseEstimate {
        let mut est = self
            .inner
            .generate(group, device, target_fidelity, warm_start);
        if group.len() > 1 {
            est.latency_ns += 500.0; // merged pulses are terrible here
            est.latency_dt = device.spec().ns_to_dt(est.latency_ns);
        }
        est
    }

    fn typical_latency_ns(&self, num_qubits: usize, device: &Device) -> f64 {
        self.inner.typical_latency_ns(num_qubits, device)
    }

    fn name(&self) -> &'static str {
        "anti-merge"
    }
}

/// A source whose fidelity collapses on three-qubit groups.
struct LowFidelity3q {
    inner: AnalyticModel,
}

impl PulseSource for LowFidelity3q {
    fn generate(
        &mut self,
        group: &[Instruction],
        device: &Device,
        target_fidelity: f64,
        warm_start: Option<f64>,
    ) -> PulseEstimate {
        let mut est = self
            .inner
            .generate(group, device, target_fidelity, warm_start);
        let qubits: std::collections::BTreeSet<usize> = group
            .iter()
            .flat_map(|i| i.qubits().iter().copied())
            .collect();
        if qubits.len() >= 3 {
            est.fidelity = 0.5;
        }
        est
    }

    fn typical_latency_ns(&self, num_qubits: usize, device: &Device) -> f64 {
        self.inner.typical_latency_ns(num_qubits, device)
    }

    fn name(&self) -> &'static str {
        "lowfid3q"
    }
}

fn covered_gates(r: &paqoc::core::CompilationResult) -> usize {
    r.grouped
        .group_ids()
        .into_iter()
        .map(|id| r.grouped.group(id).instructions.len())
        .sum()
}

#[test]
fn pipeline_survives_an_observation1_violation() {
    // Even when merged pulses are adversarially slow, compilation must
    // terminate, partition the circuit exactly, and produce pulses.
    let c = (benchmark("simon").expect("exists").build)();
    let device = Device::grid5x5();
    let mut source = AntiMergeSource {
        inner: AnalyticModel::new(),
    };
    let r = compile(&c, &device, &mut source, &PipelineOptions::m0());
    assert_eq!(covered_gates(&r), r.physical.len());
    assert!(r.latency_dt > 0);
    for id in r.grouped.group_ids() {
        assert!(r.grouped.group(id).latency_ns > 0.0);
    }
}

#[test]
fn fidelity_collapse_shows_up_in_esp_not_in_a_crash() {
    let c = (benchmark("rd32_270").expect("exists").build)();
    let device = Device::grid5x5();
    let mut bad = LowFidelity3q {
        inner: AnalyticModel::new(),
    };
    let r_bad = compile(&c, &device, &mut bad, &PipelineOptions::m0());
    let mut good = AnalyticModel::new();
    let r_good = compile(&c, &device, &mut good, &PipelineOptions::m0());
    assert_eq!(covered_gates(&r_bad), r_bad.physical.len());
    // If any 3-qubit customized gate exists, the bad source's ESP must
    // be visibly lower; either way it can never exceed the good ESP.
    assert!(r_bad.esp <= r_good.esp + 1e-12);
    let has_3q = r_bad
        .grouped
        .group_ids()
        .into_iter()
        .any(|id| r_bad.grouped.group(id).qubits.len() >= 3);
    if has_3q {
        assert!(
            r_bad.esp < 0.9 * r_good.esp,
            "{} vs {}",
            r_bad.esp,
            r_good.esp
        );
    }
}

#[test]
fn empty_and_single_gate_circuits_compile() {
    let device = Device::grid5x5();
    let mut source = AnalyticModel::new();
    let empty = Circuit::new(3);
    let r = compile(&empty, &device, &mut source, &PipelineOptions::m_inf());
    assert_eq!(r.num_groups(), 0);
    assert_eq!(r.latency_dt, 0);
    assert!((r.esp - 1.0).abs() < 1e-12);

    let mut one = Circuit::new(2);
    one.cx(0, 1);
    let r1 = compile(&one, &device, &mut source, &PipelineOptions::m0());
    assert_eq!(r1.num_groups(), 1);
    assert!(r1.latency_dt > 0);
}

#[test]
fn single_qubit_only_circuit_compiles() {
    // bb84 has no 2-qubit gates at all: no couplers ever enter play.
    let c = (benchmark("bb84").expect("exists").build)();
    let device = Device::grid5x5();
    let mut source = AnalyticModel::new();
    let r = compile(&c, &device, &mut source, &PipelineOptions::m_tuned());
    assert_eq!(covered_gates(&r), r.physical.len());
    assert!(r.esp > 0.99);
}

/// A source that never produces a usable pulse: every call reports a
/// collapsed fidelity, so retries, rollback, and estimator fallback are
/// all forced to run.
struct AlwaysFailSource {
    inner: AnalyticModel,
}

impl PulseSource for AlwaysFailSource {
    fn generate(
        &mut self,
        group: &[Instruction],
        device: &Device,
        target_fidelity: f64,
        warm_start: Option<f64>,
    ) -> PulseEstimate {
        let mut est = self
            .inner
            .generate(group, device, target_fidelity, warm_start);
        est.fidelity = 0.0;
        est
    }

    fn typical_latency_ns(&self, num_qubits: usize, device: &Device) -> f64 {
        self.inner.typical_latency_ns(num_qubits, device)
    }

    fn name(&self) -> &'static str {
        "always-fail"
    }
}

/// Compiles with a clean analytic source and the generator disabled:
/// the no-merge (decomposed) latency every degraded result must beat or
/// match.
fn decomposed_baseline_latency(c: &Circuit, device: &Device) -> u64 {
    let mut clean = AnalyticModel::new();
    let opts = PipelineOptions {
        enable_generator: false,
        ..PipelineOptions::m0()
    };
    compile(c, device, &mut clean, &opts).latency_dt
}

#[test]
fn convergence_storm_degrades_every_benchmark_gracefully() {
    // The ISSUE's headline acceptance test: a seeded 30%
    // convergence-failure rate across all seventeen benchmarks must
    // never panic, always return Ok, and never end up slower than the
    // decomposed no-merge baseline (degradation rolls merges back, it
    // does not invent latency).
    let device = Device::grid5x5();
    let opts = PipelineOptions {
        trace: true,
        ..PipelineOptions::m0()
    };
    let before = paqoc::telemetry::snapshot();
    for (i, b) in all_benchmarks().iter().enumerate() {
        let c = (b.build)();
        let baseline = decomposed_baseline_latency(&c, &device);
        let mut faulty = FaultySource::new(
            AnalyticModel::new(),
            FaultConfig::convergence_storm(0xFA17 + i as u64, 0.3),
        );
        let r = try_compile(&c, &device, &mut faulty, &opts)
            .unwrap_or_else(|e| panic!("{} failed under convergence storm: {e}", b.name));
        assert_eq!(covered_gates(&r), r.physical.len(), "{}", b.name);
        assert!(
            r.latency_dt <= baseline,
            "{}: {} > {}",
            b.name,
            r.latency_dt,
            baseline
        );
        assert!(r.esp.is_finite() && r.esp >= 0.0, "{}", b.name);
    }
    let after = paqoc::telemetry::snapshot();
    let delta = |name: &str| {
        after.counters.get(name).copied().unwrap_or(0)
            - before.counters.get(name).copied().unwrap_or(0)
    };
    assert!(delta("grape.retries") > 0, "no retries recorded");
    assert!(delta("generator.fallbacks") > 0, "no fallbacks recorded");
}

#[test]
fn nan_storm_degrades_instead_of_poisoning_the_result() {
    let c = (benchmark("simon").expect("exists").build)();
    let device = Device::grid5x5();
    let mut faulty = FaultySource::new(AnalyticModel::new(), FaultConfig::nan_storm(7, 0.3));
    let r = try_compile(&c, &device, &mut faulty, &PipelineOptions::m0())
        .expect("NaN injection must degrade, not fail");
    assert_eq!(covered_gates(&r), r.physical.len());
    assert!(r.esp.is_finite());
    assert!(r.latency_dt > 0);
    for id in r.grouped.group_ids() {
        let g = r.grouped.group(id);
        assert!(g.latency_ns.is_finite() && g.fidelity.is_finite());
    }
}

#[test]
fn expired_deadline_yields_a_valid_partial_result() {
    // A deadline far shorter than full generation: the pipeline must
    // stop merging, attach what it has, and mark the result partial —
    // still a complete, no-worse-than-decomposed compilation.
    let c = (benchmark("qft").expect("exists").build)();
    let device = Device::grid5x5();
    let baseline = decomposed_baseline_latency(&c, &device);
    let mut source = AnalyticModel::new();
    let opts = PipelineOptions {
        deadline: Some(Duration::from_nanos(1)),
        ..PipelineOptions::m0()
    };
    let r = try_compile(&c, &device, &mut source, &opts).expect("partial, not an error");
    assert!(r.partial);
    assert!(r
        .degradations
        .iter()
        .any(|d| matches!(d, Degradation::DeadlineHit { .. })));
    assert_eq!(covered_gates(&r), r.physical.len());
    assert!(r.latency_dt > 0);
    assert!(r.latency_dt <= baseline, "{} > {}", r.latency_dt, baseline);
}

#[test]
fn zero_deadline_fails_fast_with_a_typed_error() {
    let c = (benchmark("bv").expect("exists").build)();
    let device = Device::grid5x5();
    let mut source = AnalyticModel::new();
    let opts = PipelineOptions {
        deadline: Some(Duration::ZERO),
        ..PipelineOptions::m0()
    };
    let err = try_compile(&c, &device, &mut source, &opts).expect_err("zero deadline");
    assert!(
        matches!(err, CompileError::DeadlineExceeded { .. }),
        "{err}"
    );
}

#[test]
fn malformed_circuits_return_typed_errors_not_panics() {
    let device = Device::grid5x5();
    let mut source = AnalyticModel::new();

    let zero_qubits = Circuit::new(0);
    let err = try_compile(&zero_qubits, &device, &mut source, &PipelineOptions::m0())
        .expect_err("zero-qubit circuit");
    assert!(matches!(err, CompileError::MalformedCircuit(_)), "{err}");

    // Wider than the 25-qubit grid: a mapping error, not a panic.
    let mut wide = Circuit::new(26);
    for q in 0..25 {
        wide.cx(q, q + 1);
    }
    let err = try_compile(&wide, &device, &mut source, &PipelineOptions::m0())
        .expect_err("26 qubits on a 25-qubit device");
    assert!(matches!(err, CompileError::Mapping(_)), "{err}");
}

#[test]
fn disabled_fallback_surfaces_the_pulse_source_error() {
    let c = (benchmark("rd32_270").expect("exists").build)();
    let device = Device::grid5x5();
    let mut source = AlwaysFailSource {
        inner: AnalyticModel::new(),
    };
    let opts = PipelineOptions {
        allow_estimator_fallback: false,
        ..PipelineOptions::m0()
    };
    let err = try_compile(&c, &device, &mut source, &opts).expect_err("fallback disabled");
    assert!(matches!(err, CompileError::PulseSource { .. }), "{err}");
}

#[test]
fn always_failing_source_still_compiles_with_fallback_enabled() {
    // Even when no pulse ever converges, the bottom rung of the ladder
    // (estimator fallback) keeps the compilation alive.
    let c = (benchmark("rd32_270").expect("exists").build)();
    let device = Device::grid5x5();
    let mut source = AlwaysFailSource {
        inner: AnalyticModel::new(),
    };
    let baseline = decomposed_baseline_latency(&c, &device);
    let r = try_compile(&c, &device, &mut source, &PipelineOptions::m0())
        .expect("estimator fallback must keep this alive");
    assert_eq!(covered_gates(&r), r.physical.len());
    assert!(!r.degradations.is_empty());
    assert!(r.latency_dt <= baseline, "{} > {}", r.latency_dt, baseline);
}

#[test]
fn unsatisfiable_esp_floor_is_a_typed_error() {
    let c = (benchmark("simon").expect("exists").build)();
    let device = Device::grid5x5();
    let mut source = AnalyticModel::new();
    let opts = PipelineOptions {
        min_esp: Some(2.0), // no circuit can reach ESP > 1
        ..PipelineOptions::m0()
    };
    let err = try_compile(&c, &device, &mut source, &opts).expect_err("impossible floor");
    match err {
        CompileError::EspUnsatisfiable { achieved, required } => {
            assert!(achieved <= 1.0);
            assert!((required - 2.0).abs() < 1e-12);
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn wide_circuit_on_exact_capacity_compiles() {
    // 25 qubits on the 25-qubit grid: no spare room for the mapper.
    let mut c = Circuit::new(25);
    for q in 0..25 {
        c.h(q);
    }
    for q in 0..24 {
        c.cx(q, q + 1);
    }
    let device = Device::grid5x5();
    let mut source = AnalyticModel::new();
    let r = compile(&c, &device, &mut source, &PipelineOptions::m0());
    assert_eq!(covered_gates(&r), r.physical.len());
}
