//! The executor's determinism contract, end to end: compiling with
//! `threads = 1` and `threads = 8` must produce byte-identical pulse
//! tables and identical results for every Table-I benchmark.
//!
//! This is the property that makes the parallel executor safe to turn
//! on by default — parallelism is an implementation detail, never
//! observable in the output. It holds because each batch job runs on a
//! fresh source seeded by its composite key (`paqoc::exec::job_seed`),
//! with no cross-thread warm starting, so every pulse is a pure
//! function of `(key, group, device, options)` regardless of schedule.

use paqoc::core::{try_compile_batch, CompilationResult, PipelineOptions};
use paqoc::device::Device;
use paqoc::exec::{AnalyticFactory, PulseSourceFactory};
use paqoc::workloads::all_benchmarks;
use std::sync::Arc;

fn compile_with_threads(name: &str, threads: usize) -> CompilationResult {
    let device = Device::grid5x5();
    let circuit = (all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .expect(name)
        .build)();
    let opts = PipelineOptions {
        threads: Some(threads),
        ..PipelineOptions::m_inf()
    };
    let factory: Arc<dyn PulseSourceFactory> = Arc::new(AnalyticFactory);
    try_compile_batch(&circuit, &device, factory, &opts).expect(name)
}

/// Every stable (non-wall-clock) field of the result must match, and
/// the pulse-table dump — sorted `(composite key, estimate)` pairs —
/// must be equal entry for entry, f64 bits included (`PulseEstimate`'s
/// `PartialEq` compares the raw floats).
fn assert_identical(name: &str, a: &CompilationResult, b: &CompilationResult) {
    assert_eq!(a.latency_dt, b.latency_dt, "{name}: latency_dt");
    assert_eq!(a.latency_ns, b.latency_ns, "{name}: latency_ns bits");
    assert_eq!(a.esp, b.esp, "{name}: esp bits");
    assert_eq!(a.stats, b.stats, "{name}: compile stats");
    assert_eq!(a.report, b.report, "{name}: generator report");
    assert_eq!(a.num_groups(), b.num_groups(), "{name}: group count");
    assert_eq!(
        a.degradations.len(),
        b.degradations.len(),
        "{name}: degradations"
    );
    assert_eq!(
        a.pulse_table.len(),
        b.pulse_table.len(),
        "{name}: pulse table size"
    );
    for ((ka, ea), (kb, eb)) in a.pulse_table.iter().zip(&b.pulse_table) {
        assert_eq!(ka, kb, "{name}: pulse table keys diverge");
        assert_eq!(ea, eb, "{name}: pulse for {ka} diverges");
    }
}

#[test]
fn all_benchmarks_are_bit_identical_across_thread_counts() {
    for b in all_benchmarks() {
        let sequential = compile_with_threads(b.name, 1);
        let parallel = compile_with_threads(b.name, 8);
        assert!(
            !sequential.pulse_table.is_empty(),
            "{}: empty pulse table",
            b.name
        );
        assert_identical(b.name, &sequential, &parallel);
    }
}

#[test]
fn repeated_parallel_compiles_are_self_consistent() {
    // Same thread count twice: catches nondeterminism that a 1-vs-8
    // comparison could mask if both runs drifted the same way.
    let first = compile_with_threads("qaoa", 8);
    let second = compile_with_threads("qaoa", 8);
    assert_identical("qaoa", &first, &second);
}

/// The flight recorder samples gauges and process resources on its own
/// thread while batches run; with it live (and telemetry enabled, so
/// the stall watchdog threads spawn too) the determinism contract must
/// be untouched — observability writes to the journal, never to pulses.
#[test]
fn determinism_holds_with_flight_recorder_running() {
    paqoc::telemetry::set_enabled(true);
    let recorder = paqoc::exec::FlightRecorder::start(std::time::Duration::from_millis(1));
    assert!(recorder.is_running());

    let sequential = compile_with_threads("qaoa", 1);
    let parallel = compile_with_threads("qaoa", 8);
    assert_identical("qaoa", &sequential, &parallel);

    // The recorder must actually have been sampling during the runs.
    assert!(recorder.samples() > 0, "recorder never sampled");
    drop(recorder);
}

/// Kernel-probe attribution under batch concurrency: the per-worker
/// thread-local deltas merged into `CompilationResult::kernel_calls`
/// must sum to the same totals whether one worker did everything or
/// four split it — the same jobs run the same kernels, so the call
/// counts are schedule-independent. The times (`kernel_ns`) are
/// wall-clock and therefore soft: only their presence is asserted.
/// Neither map is part of `assert_identical`, keeping the bit-identity
/// contract (stats, pulses) free of observability data.
#[test]
fn kernel_probe_attribution_is_deterministic_across_thread_counts() {
    paqoc::telemetry::set_kernel_probes(Some(true));
    let sequential = compile_with_threads("bv", 1);
    let parallel = compile_with_threads("bv", 4);
    paqoc::telemetry::set_kernel_probes(None);

    assert_identical("bv", &sequential, &parallel);
    assert!(
        !sequential.kernel_calls.is_empty(),
        "probed compile recorded no kernel calls"
    );
    assert_eq!(
        sequential.kernel_calls, parallel.kernel_calls,
        "kernel call counts must not depend on the worker count"
    );
    // The analytic latency model computes Weyl invariants, so these
    // mathkit kernels must show up with real work attributed.
    for kernel in ["mathkit.matmul", "mathkit.eig"] {
        let calls = sequential.kernel_calls.get(kernel).copied().unwrap_or(0);
        assert!(calls > 0, "{kernel}: expected calls, got none");
        assert!(
            sequential.kernel_ns.contains_key(kernel),
            "{kernel}: calls recorded but no time attributed"
        );
    }
}
