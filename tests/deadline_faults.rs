//! Deadline × fault-injection interaction: a pulse source that stalls
//! (injected latency-spike/slow-call faults) must trip the compilation
//! deadline into a *partial* result — every group still carries a valid
//! estimate, including the group that was in flight when time ran out —
//! and `pipeline.deadline_hits` must increment exactly once per
//! compilation, no matter how many groups the deadline interrupts.
//!
//! Telemetry counters are process-global, so this lives in its own test
//! binary (integration tests each get their own process) and runs the
//! pipeline exactly once.

use paqoc::circuit::Circuit;
use paqoc::core::{try_compile, Degradation, PipelineOptions};
use paqoc::device::{AnalyticModel, Device, FaultConfig, FaultySource};
use paqoc::telemetry;
use std::time::Duration;

/// A chain of two-qubit phase gates with pairwise-distinct angles:
/// every group is a distinct pulse-table key, so no cache hit can
/// absorb a generation and every attach pays the injected stall.
fn distinct_angle_chain(qubits: usize) -> Circuit {
    let mut c = Circuit::new(qubits);
    for i in 0..qubits - 1 {
        c.cp(i, i + 1, 0.11 + 0.07 * i as f64);
        c.rx(i, 0.23 + 0.05 * i as f64);
    }
    c
}

#[test]
fn deadline_under_slow_faults_is_partial_complete_and_counted_once() {
    telemetry::set_enabled(true);
    telemetry::reset();

    let device = Device::line(12);
    let circuit = distinct_angle_chain(12);
    // Every generation stalls 20 ms and spikes its reported latency;
    // with ~22 distinct groups and a 100 ms deadline, search finishes
    // comfortably, a handful of groups attach, then the clock runs out
    // with groups still pending — the deadline lands mid-attachment.
    let mut source = FaultySource::new(
        AnalyticModel::new(),
        FaultConfig {
            slow_call_rate: 1.0,
            slow_call: Duration::from_millis(20),
            latency_spike_rate: 1.0,
            latency_spike_factor: 4.0,
            ..FaultConfig::default()
        },
    );
    let opts = PipelineOptions {
        deadline: Some(Duration::from_millis(100)),
        skip_mapping: true,
        ..PipelineOptions::m_inf()
    };

    let r = try_compile(&circuit, &device, &mut source, &opts)
        .expect("a mid-run deadline degrades, it does not error");

    assert!(r.partial, "deadline hit must mark the result partial");
    assert!(source.counts().slow_calls > 0, "faults never fired");

    // Exactly one DeadlineHit degradation, even though many groups were
    // interrupted (regression: merge- and attach-phase hits used to be
    // double-counted).
    let hits: Vec<&Degradation> = r
        .degradations
        .iter()
        .filter(|d| matches!(d, Degradation::DeadlineHit { .. }))
        .collect();
    assert_eq!(hits.len(), 1, "degradations: {:?}", r.degradations);

    let snap = telemetry::snapshot();
    assert_eq!(
        snap.counters.get("pipeline.deadline_hits").copied(),
        Some(1),
        "pipeline.deadline_hits must increment exactly once"
    );

    // The in-flight and never-reached groups still carry usable
    // (analytic) estimates: the schedule is complete and monotone.
    assert!(r.latency_dt > 0);
    assert!(r.esp.is_finite() && r.esp > 0.0);
    for id in r.grouped.group_ids() {
        let g = r.grouped.group(id);
        assert!(
            g.latency_ns > 0.0,
            "group {id:?} has no latency in the partial result"
        );
        assert!(
            g.fidelity > 0.0 && g.fidelity <= 1.0,
            "group {id:?} fidelity {} invalid in the partial result",
            g.fidelity
        );
    }
    // Fewer pulses were generated than groups exist — proof the
    // deadline actually cut work short rather than expiring after.
    assert!(
        (r.stats.pulses_generated as usize) < r.grouped.len(),
        "deadline expired only after all {} groups attached",
        r.grouped.len()
    );
}
