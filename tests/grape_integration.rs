//! Cross-crate validation of the real GRAPE path: the analytic model's
//! predictions against actual optimized pulses, and whole-schedule
//! pulse simulation.

use paqoc::circuit::{combined_unitary, Circuit, GateKind, Instruction};
use paqoc::core::{compile, PipelineOptions};
use paqoc::device::{AnalyticModel, Device, PulseSource};
use paqoc::grape::{propagate, GrapeSource};
use paqoc::math::trace_fidelity;
use std::collections::BTreeSet;

#[test]
fn grape_compiles_a_small_circuit_end_to_end() {
    let device = Device::line(2);
    let mut grape = GrapeSource::fast();
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1).rz(1, 0.4);
    let r = compile(
        &c,
        &device,
        &mut grape,
        &PipelineOptions {
            skip_mapping: true,
            ..PipelineOptions::m0()
        },
    );
    assert!(r.latency_dt > 0);
    assert!(r.esp > 0.95, "esp {}", r.esp);

    // Every group's cached pulse must re-propagate onto its unitary.
    for id in r.grouped.group_ids() {
        let g = r.grouped.group(id);
        let qubits: Vec<usize> = g
            .instructions
            .iter()
            .flat_map(|i| i.qubits().iter().copied())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let pulse = grape
            .cached_pulse(&g.instructions)
            .expect("pulse cached during compile");
        let controls = device.controls_for(&qubits);
        let realized = propagate(pulse, &controls);
        let target = combined_unitary(&g.instructions, &qubits);
        let f = trace_fidelity(&target, &realized);
        assert!(f > 0.98, "group pulse fidelity {f}");
    }
}

#[test]
fn analytic_model_tracks_grape_durations() {
    // The surrogate should land within 2× of real GRAPE on basic gates
    // (it is a *model*; exactness is not required, monotonicity is).
    let device = Device::line(2);
    let mut grape = GrapeSource::fast();
    let mut model = AnalyticModel::new();
    let cases: Vec<Vec<Instruction>> = vec![
        vec![Instruction::new(GateKind::X, vec![0], vec![])],
        vec![Instruction::new(GateKind::H, vec![0], vec![])],
        vec![Instruction::new(GateKind::Cx, vec![0, 1], vec![])],
        vec![
            Instruction::new(GateKind::H, vec![0], vec![]),
            Instruction::new(GateKind::Cx, vec![0, 1], vec![]),
        ],
    ];
    let mut g_prev = 0.0f64;
    let mut m_prev = 0.0f64;
    for group in &cases {
        let g = grape.generate(group, &device, 0.99, None).latency_ns;
        let m = model.generate(group, &device, 0.99, None).latency_ns;
        let ratio = m / g;
        assert!(
            (0.5..2.0).contains(&ratio),
            "model {m:.1} ns vs grape {g:.1} ns (ratio {ratio:.2})"
        );
        // Both orderings agree (monotone in difficulty for this list).
        assert!(g >= g_prev * 0.8, "grape ordering");
        assert!(m >= m_prev * 0.8, "model ordering");
        g_prev = g;
        m_prev = m;
    }
}
