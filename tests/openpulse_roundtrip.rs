//! OpenPulse export/import roundtrip over the whole Table-I corpus on
//! every registered backend: the re-imported program must be
//! sample-exact (bit-identical envelopes modulo `-0.0` normalization),
//! and export must be a byte-level fixed point of import ∘ export. A
//! seeded property test additionally roundtrips hand-built programs
//! with hostile pulse/channel/experiment names and adversarial sample
//! magnitudes.

use paqoc::backend::{
    export, import, lower_to_program, resolve, sample_exact_eq, Experiment, PlayInst, PulseDef,
    PulseProgram, BACKEND_NAMES,
};
use paqoc::core::{try_compile, PipelineOptions};
use paqoc::device::AnalyticModel;
use paqoc::math::Rng;
use paqoc::workloads::all_benchmarks;

/// Every benchmark that fits the backend roundtrips sample-exact, on
/// all three backends. (The tunable-coupler model has 16 qubits, so the
/// larger Table-I circuits are skipped there — but at least the small
/// ones must run on EVERY backend.)
#[test]
fn all_benchmarks_roundtrip_sample_exact_on_every_backend() {
    let opts = PipelineOptions::m_inf();
    for name in BACKEND_NAMES {
        let backend = resolve(name).expect(name);
        let device = backend.device();
        let mut ran = 0usize;
        for b in all_benchmarks() {
            let circuit = (b.build)();
            if circuit.num_qubits() > device.topology().num_qubits() {
                continue;
            }
            let mut source = AnalyticModel::new();
            let result = try_compile(&circuit, &device, &mut source, &opts)
                .unwrap_or_else(|e| panic!("{name}/{}: compile failed: {e}", b.name));
            let program = lower_to_program(b.name, &result, &device, backend.as_ref());
            let wire = export(&program);
            let back =
                import(&wire).unwrap_or_else(|e| panic!("{name}/{}: import failed: {e}", b.name));
            assert!(
                sample_exact_eq(&program, &back),
                "{name}/{}: reimport is not sample-exact",
                b.name
            );
            assert_eq!(back.backend_name, name);
            assert_eq!(back.fingerprint, device.fingerprint());
            // export ∘ import ∘ export is a byte-level fixed point.
            assert_eq!(
                export(&back),
                wire,
                "{name}/{}: export is not a fixed point",
                b.name
            );
            ran += 1;
        }
        assert!(
            ran >= 3,
            "backend {name} must run at least the small benchmarks, ran {ran}"
        );
    }
}

/// Name pools for the hostile-program generator: quotes, backslashes,
/// newlines, NUL-adjacent controls, RTL text, emoji, and JSON-special
/// tokens — everything the hand-rolled writer must escape correctly.
const HOSTILE_NAMES: [&str; 8] = [
    "控制-π/2 🎛",
    "a\"b\\c",
    "line\nbreak\ttab",
    "‏rtl-؄text",
    "null\u{0}byte",
    "{\"looks\":\"like json\"}",
    " leading and trailing ",
    "d0", // collides with a default drive-channel name
];

fn hostile_sample(rng: &mut Rng) -> (f64, f64) {
    // Adversarial magnitudes: subnormals, tiny exponents, exact zeros
    // (including a -0.0 the exporter must scrub), and plain values.
    let pick = |rng: &mut Rng| -> f64 {
        match rng.random_range(0u32..=5) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::MIN_POSITIVE,
            3 => 1e-300 * (rng.random::<f64>() - 0.5),
            4 => (rng.random::<f64>() - 0.5) * 2.0,
            _ => -(rng.random::<f64>()) * 1e12,
        }
    };
    (pick(rng), pick(rng))
}

fn hostile_program(rng: &mut Rng, seed_tag: u64) -> PulseProgram {
    let n_pulses = rng.random_range(1usize..=4);
    let pulses: Vec<PulseDef> = (0..n_pulses)
        .map(|i| PulseDef {
            // Unique per index: pulse names must be unique in a program.
            name: format!(
                "{}#{i}",
                HOSTILE_NAMES[rng.random_range(0usize..=HOSTILE_NAMES.len() - 1)]
            ),
            samples: (0..rng.random_range(1usize..=16))
                .map(|_| hostile_sample(rng))
                .collect(),
        })
        .collect();
    let instructions: Vec<PlayInst> = (0..rng.random_range(1usize..=8))
        .map(|_| PlayInst {
            pulse: pulses[rng.random_range(0usize..=pulses.len() - 1)]
                .name
                .clone(),
            channel: HOSTILE_NAMES[rng.random_range(0usize..=HOSTILE_NAMES.len() - 1)].to_string(),
            t0_dt: rng.random_range(0u64..=1 << 40),
        })
        .collect();
    PulseProgram {
        qobj_id: format!("hostile-{seed_tag}"),
        backend_name: HOSTILE_NAMES[rng.random_range(0usize..=HOSTILE_NAMES.len() - 1)].to_string(),
        fingerprint: rng.random::<u64>(),
        calibration_id: if rng.random::<f64>() < 0.5 {
            Some(rng.random_range(0u64..=u16::MAX as u64) as u16)
        } else {
            None
        },
        dt_ns: 0.5 + rng.random::<f64>(),
        pulses,
        experiments: vec![Experiment {
            name: HOSTILE_NAMES[rng.random_range(0usize..=HOSTILE_NAMES.len() - 1)].to_string(),
            instructions,
        }],
    }
}

/// Seeded property test: 200 hostile programs roundtrip sample-exact
/// and reach the byte fixed point, whatever the names and magnitudes.
#[test]
fn hostile_programs_roundtrip_sample_exact() {
    let mut rng = Rng::seed_from_u64(0x0BE5_CA1E);
    for case in 0..200u64 {
        let program = hostile_program(&mut rng, case);
        let wire = export(&program);
        let back = import(&wire).unwrap_or_else(|e| panic!("case {case}: import failed: {e}"));
        assert!(
            sample_exact_eq(&program, &back),
            "case {case}: not sample-exact\n{wire}"
        );
        assert_eq!(back.qobj_id, program.qobj_id, "case {case}");
        assert_eq!(back.backend_name, program.backend_name, "case {case}");
        assert_eq!(back.fingerprint, program.fingerprint, "case {case}");
        assert_eq!(back.calibration_id, program.calibration_id, "case {case}");
        assert_eq!(
            export(&back),
            wire,
            "case {case}: export is not a fixed point"
        );
    }
}
