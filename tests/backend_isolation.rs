//! Backend-namespace isolation through the persistent pulse store and
//! the shared pulse table: a calibration-snapshot drift must rotate the
//! store *namespace* (not the file), two backends sharing one store
//! path must never serve each other's pulses, and an abandoned
//! namespace must be LFU-evictable under a byte budget while the live
//! one stays warm.

use paqoc::backend::{Backend, HeavyHexBackend, TunableCouplerBackend, HEAVY_HEX_DEFAULT_CAL};
use paqoc::core::{try_compile, try_compile_batch, PipelineOptions};
use paqoc::device::{decode_fingerprint, AnalyticModel, FingerprintKind};
use paqoc::exec::{AnalyticFactory, PulseSourceFactory, SharedPulseTable};
use paqoc::store::{PulseStore, StoreOptions};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_db(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paqoc-backend-iso-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(format!("{}.lock", path.display()));
    path
}

/// A drifted copy of the shipped heavy-hex snapshot: one T1 changed, as
/// a recalibration would.
fn drifted_snapshot() -> String {
    let drifted = HEAVY_HEX_DEFAULT_CAL.replacen("\"t1_us\": 1", "\"t1_us\": 9", 1);
    assert_ne!(drifted, HEAVY_HEX_DEFAULT_CAL, "drift must change the text");
    drifted
}

fn test_circuit() -> paqoc::circuit::Circuit {
    (paqoc::workloads::benchmark("mod5d2_64")
        .expect("table-I benchmark")
        .build)()
}

/// Calibration drift rotates the namespace, not the file: after a
/// recalibration, the same circuit compiles cold (zero cross-hits into
/// the stale snapshot's pulses) while the old snapshot's namespace
/// remains intact and warm in the same store file.
#[test]
fn calibration_drift_rotates_namespace_without_clobbering() {
    let db = tmp_db("drift.pqps");
    let circuit = test_circuit();

    let backend_a = HeavyHexBackend::from_snapshot_str(HEAVY_HEX_DEFAULT_CAL).expect("shipped");
    let backend_b = HeavyHexBackend::from_snapshot_str(&drifted_snapshot()).expect("drifted");
    let dev_a = backend_a.device();
    let dev_b = backend_b.device();
    assert_ne!(
        dev_a.fingerprint(),
        dev_b.fingerprint(),
        "a drifted snapshot must rotate the fingerprint"
    );
    let (
        FingerprintKind::Namespaced {
            ns_id: na,
            cal_id: ca,
        },
        FingerprintKind::Namespaced {
            ns_id: nb,
            cal_id: cb,
        },
    ) = (
        decode_fingerprint(dev_a.fingerprint()),
        decode_fingerprint(dev_b.fingerprint()),
    )
    else {
        panic!("heavy-hex fingerprints must be namespaced");
    };
    assert_eq!(na, nb, "same backend family, same namespace id");
    assert_ne!(ca, cb, "drift must rotate the calibration id");

    let opts = PipelineOptions {
        pulse_db: Some(db.clone()),
        ..PipelineOptions::m_inf()
    };

    // Cold A, then warm A: the store works for snapshot A.
    let mut source = AnalyticModel::new();
    let cold_a = try_compile(&circuit, &dev_a, &mut source, &opts).expect("cold A");
    assert!(cold_a.stats.pulses_generated > 0);
    let warm_a = try_compile(&circuit, &dev_a, &mut source, &opts).expect("warm A");
    assert_eq!(warm_a.stats.pulses_generated, 0, "A must be warm");
    assert!(warm_a.stats.store_hits > 0);

    // Cold B against the SAME file: zero cross-hits from A's namespace.
    let cold_b = try_compile(&circuit, &dev_b, &mut source, &opts).expect("cold B");
    assert!(
        cold_b.stats.pulses_generated > 0,
        "drifted snapshot must not reuse stale pulses"
    );
    assert_eq!(
        cold_b.stats.store_hits, 0,
        "zero cross-namespace store hits on the cold drifted pass"
    );

    // A is STILL warm afterwards: B's open cohabited, it did not rotate
    // the file out from under A.
    let warm_a2 = try_compile(&circuit, &dev_a, &mut source, &opts).expect("warm A after B");
    assert_eq!(
        warm_a2.stats.pulses_generated, 0,
        "cohabitation must not clobber the old namespace"
    );
    // And B is warm in the same file too.
    let warm_b = try_compile(&circuit, &dev_b, &mut source, &opts).expect("warm B");
    assert_eq!(warm_b.stats.pulses_generated, 0);
    assert!(warm_b.stats.store_hits > 0);
}

/// An abandoned namespace is reclaimable: under a `max_bytes` budget,
/// LFU eviction drops the stale snapshot's records (fewer hits) while
/// the live snapshot's stay resident and warm.
#[test]
fn stale_namespace_is_lfu_evicted_under_byte_budget() {
    let db = tmp_db("evict.pqps");
    let circuit = test_circuit();
    let backend_a = HeavyHexBackend::from_snapshot_str(HEAVY_HEX_DEFAULT_CAL).expect("shipped");
    let backend_b = HeavyHexBackend::from_snapshot_str(&drifted_snapshot()).expect("drifted");
    let dev_a = backend_a.device();
    let dev_b = backend_b.device();
    let opts = PipelineOptions {
        pulse_db: Some(db.clone()),
        ..PipelineOptions::m_inf()
    };
    let mut source = AnalyticModel::new();
    try_compile(&circuit, &dev_a, &mut source, &opts).expect("cold A");
    try_compile(&circuit, &dev_b, &mut source, &opts).expect("cold B");

    // Drive eviction directly: make B's records clearly hotter, then
    // maintain under a budget that cannot hold both namespaces.
    let prefix_a = format!("{:016x}/", dev_a.fingerprint());
    let prefix_b = format!("{:016x}/", dev_b.fingerprint());
    let (budget, count_a, count_b) = {
        let mut store = PulseStore::open_with(&db, dev_b.fingerprint(), StoreOptions::default())
            .expect("open for hit-warming");
        let a_count = store
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix_a))
            .count();
        let b_keys: Vec<String> = store
            .iter()
            .map(|(k, _)| k.to_string())
            .filter(|k| k.starts_with(&prefix_b))
            .collect();
        assert!(a_count > 0, "A's namespace must be populated");
        assert!(!b_keys.is_empty(), "B's namespace must be populated");
        for _ in 0..10 {
            for k in &b_keys {
                store.hit(k).expect("hit B record");
            }
        }
        store.sync().expect("sync hit counts");
        // Each namespace is roughly half the live bytes; 60% forces a
        // chunk of the cold half out while the hot one fits whole.
        (store.live_bytes() * 6 / 10, a_count, b_keys.len())
    };
    {
        let mut store = PulseStore::open_with(
            &db,
            dev_b.fingerprint(),
            StoreOptions::with_max_bytes(budget),
        )
        .expect("reopen with byte budget");
        let report = store.maintain().expect("maintain");
        assert!(report.evicted > 0, "the budget must force evictions");
        let (mut live_a, mut live_b) = (0usize, 0usize);
        for (k, _) in store.iter() {
            if k.starts_with(&prefix_a) {
                live_a += 1;
            } else if k.starts_with(&prefix_b) {
                live_b += 1;
            }
        }
        // LFU order is the isolation property: every eviction came out
        // of the cold namespace; the hot one survived whole.
        assert!(
            live_a < count_a,
            "evictions must reclaim the cold namespace ({live_a} of {count_a} left)"
        );
        assert_eq!(
            live_b, count_b,
            "the hot namespace must survive eviction untouched"
        );
        store.sync().expect("sync evictions");
    }

    // Behavioral check through the pipeline: A is cold again, B warm.
    let recold_a = try_compile(&circuit, &dev_a, &mut source, &opts).expect("re-cold A");
    assert!(
        recold_a.stats.pulses_generated > 0,
        "evicted namespace must compile cold"
    );
    let warm_b = try_compile(&circuit, &dev_b, &mut source, &opts).expect("warm B");
    assert_eq!(warm_b.stats.pulses_generated, 0, "B must still be warm");
}

/// Two different backends batched through ONE `SharedPulseTable` never
/// serve each other's pulses: composite keys are fingerprint-prefixed,
/// so each backend's second pass warm-hits only its own entries.
#[test]
fn shared_table_isolates_backends_in_batch_mode() {
    let circuit = test_circuit();
    let dev_hh = HeavyHexBackend::shipped().device();
    let dev_tc = TunableCouplerBackend::default().device();
    let table = Arc::new(SharedPulseTable::new());
    let opts = PipelineOptions {
        shared_table: Some(table.clone()),
        ..PipelineOptions::m_inf()
    };
    let factory: Arc<dyn PulseSourceFactory> = Arc::new(AnalyticFactory);

    let cold_hh =
        try_compile_batch(&circuit, &dev_hh, factory.clone(), &opts).expect("cold heavy-hex");
    assert!(cold_hh.stats.pulses_generated > 0);
    let after_hh = table.len();
    assert!(after_hh > 0, "heavy-hex pulses land in the shared table");

    // The other backend compiles the SAME circuit against the SAME
    // table and still has to generate everything itself.
    let cold_tc =
        try_compile_batch(&circuit, &dev_tc, factory.clone(), &opts).expect("cold tunable-coupler");
    assert!(
        cold_tc.stats.pulses_generated > 0,
        "tunable-coupler must not be served heavy-hex pulses"
    );
    assert!(
        table.len() > after_hh,
        "tunable-coupler entries are additional, not shared"
    );

    // Both warm-hit their own namespaces on rerun.
    let warm_hh = try_compile_batch(&circuit, &dev_hh, factory.clone(), &opts).expect("warm hh");
    assert_eq!(warm_hh.stats.pulses_generated, 0);
    let warm_tc = try_compile_batch(&circuit, &dev_tc, factory, &opts).expect("warm tc");
    assert_eq!(warm_tc.stats.pulses_generated, 0);
}
