//! Property-style tests over the workspace's core invariants.
//!
//! Each invariant is exercised on a deterministic family of random
//! inputs drawn from the in-tree PRNG (no external property-testing
//! framework in this offline build): a fixed set of seeds drives the
//! same generator a fuzzer would, so failures reproduce exactly.

use paqoc::circuit::{
    apply_gate_to_state, decompose, embed_unitary, Basis, Circuit, DependencyDag, GateKind,
};
use paqoc::device::{AnalyticModel, Device, PulseSource, Topology};
use paqoc::mapping::{sabre_map, SabreOptions};
use paqoc::math::{expm, random_unitary_seeded, trace_fidelity, weyl_coordinates, Rng, C64};
use paqoc::mining::{mine_frequent_subcircuits, CircuitGraph, MinerOptions, Reachability};

/// Number of random cases per invariant (proptest used 24).
const CASES: u64 = 24;

/// A small random circuit over a mixed gate set, deterministic per seed —
/// the same distribution the old proptest strategy drew from.
fn random_circuit(seed: u64, max_qubits: usize, max_gates: usize) -> Circuit {
    let mut rng = Rng::seed_from_u64(seed);
    let n = rng.random_range(2..=max_qubits);
    let gates = rng.random_range(1..max_gates.max(2));
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        let kind = rng.random_range(0..8u32);
        let a = rng.random_range(0..max_qubits) % n;
        let b = rng.random_range(0..max_qubits) % n;
        let theta = rng.random_range(-3.0..3.0f64);
        match kind {
            0 => {
                c.h(a);
            }
            1 => {
                c.x(a);
            }
            2 => {
                c.t(a);
            }
            3 => {
                c.rz(a, theta);
            }
            4 | 5 if a != b => {
                c.cx(a, b);
            }
            6 if a != b => {
                c.cz(a, b);
            }
            7 if a != b => {
                c.swap(a, b);
            }
            _ => {
                c.sx(a);
            }
        }
    }
    c
}

#[test]
fn decomposition_preserves_the_unitary() {
    for seed in 0..CASES {
        let c = random_circuit(seed, 4, 12);
        let low = decompose(&c, Basis::Ibm);
        let f = trace_fidelity(&c.unitary(), &low.unitary());
        assert!(f > 1.0 - 1e-8, "seed {seed}: fidelity {f}");
    }
}

#[test]
fn circuit_unitaries_are_unitary() {
    for seed in 0..CASES {
        let c = random_circuit(seed.wrapping_add(100), 4, 12);
        assert!(c.unitary().is_unitary(1e-8), "seed {seed}");
    }
}

#[test]
fn state_application_matches_matrix_action() {
    for seed in 0..CASES {
        let c = random_circuit(seed.wrapping_add(200), 3, 10);
        let u = c.unitary();
        let dim = 1usize << c.num_qubits();
        for col in [0usize, dim - 1] {
            let mut state = vec![C64::ZERO; dim];
            state[col] = C64::ONE;
            for inst in c.iter() {
                apply_gate_to_state(&inst.unitary(), inst.qubits(), &mut state);
            }
            for r in 0..dim {
                assert!(
                    (state[r] - u[(r, col)]).abs() < 1e-8,
                    "seed {seed}, column {col}, row {r}"
                );
            }
        }
    }
}

#[test]
fn expm_of_skew_hermitian_is_unitary() {
    for seed in 0..32 {
        // -i·H with random Hermitian H = A + A†.
        let a = random_unitary_seeded(4, seed);
        let h = &a + &a.dagger();
        let u = expm(&h.scaled(C64::new(0.0, -0.37)));
        assert!(u.is_unitary(1e-8), "seed {seed}");
    }
}

#[test]
fn weyl_content_is_invariant_under_local_dressing() {
    for seed in 0..32u64 {
        let u = random_unitary_seeded(4, seed);
        let l1 = random_unitary_seeded(2, seed.wrapping_add(1000));
        let l2 = random_unitary_seeded(2, seed.wrapping_add(2000));
        let dressed = l1.kron(&l2).matmul(&u);
        let w1 = weyl_coordinates(&u).interaction_content();
        let w2 = weyl_coordinates(&dressed).interaction_content();
        assert!((w1 - w2).abs() < 1e-3, "seed {seed}: {w1} vs {w2}");
    }
}

#[test]
fn embedding_preserves_unitarity() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed.wrapping_add(300));
        let q0 = rng.random_range(0..3usize);
        let q1 = rng.random_range(0..3usize);
        if q0 == q1 {
            continue;
        }
        let g = random_unitary_seeded(4, seed);
        let e = embed_unitary(&g, &[q0, q1], 3);
        assert!(e.is_unitary(1e-8), "seed {seed}, qubits {q0},{q1}");
    }
}

#[test]
fn sabre_routes_every_two_qubit_gate_onto_a_coupler() {
    for seed in 0..CASES {
        let c = random_circuit(seed.wrapping_add(400), 5, 14);
        let topo = Topology::grid(3, 3);
        let lowered = decompose(&c, Basis::Ibm);
        let mapped = sabre_map(&lowered, &topo, &SabreOptions::default());
        for inst in mapped.circuit.iter() {
            if inst.qubits().len() == 2 {
                assert!(
                    topo.are_coupled(inst.qubits()[0], inst.qubits()[1]),
                    "seed {seed}: {inst} off-coupler"
                );
            }
        }
        assert_eq!(
            mapped.circuit.len(),
            lowered.len() + mapped.swaps_inserted,
            "seed {seed}"
        );
    }
}

#[test]
fn mined_instances_are_convex_and_capped() {
    for seed in 0..CASES {
        let c = random_circuit(seed.wrapping_add(500), 5, 20);
        let opts = MinerOptions {
            max_qubits: 3,
            max_gates: 4,
            ..MinerOptions::default()
        };
        let graph = CircuitGraph::from_circuit(&c);
        let reach = Reachability::new(&graph);
        for p in mine_frequent_subcircuits(&c, &opts) {
            assert!(p.num_qubits <= 3, "seed {seed}");
            assert!(p.num_gates <= 4, "seed {seed}");
            assert!(p.support() >= 2, "seed {seed}");
            for inst in &p.instances {
                assert!(reach.is_convex(inst), "seed {seed}: {inst:?}");
            }
        }
    }
}

#[test]
fn observation1_merging_is_subadditive() {
    for seed in 0..CASES {
        // Any whole-circuit group costs at most the sum of its gates.
        let c = random_circuit(seed.wrapping_add(600), 3, 6);
        let device = Device::grid5x5();
        let mut model = AnalyticModel::new();
        let group: Vec<_> = c.instructions().to_vec();
        if group.is_empty() {
            continue;
        }
        let merged = model.generate(&group, &device, 0.999, None).latency_ns;
        let sum: f64 = group
            .iter()
            .map(|i| {
                model
                    .generate(std::slice::from_ref(i), &device, 0.999, None)
                    .latency_ns
            })
            .sum();
        assert!(
            merged <= sum * 1.01,
            "seed {seed}: merged {merged} vs sum {sum}"
        );
    }
}

#[test]
fn dag_critical_path_bounds_total_weight() {
    for seed in 0..CASES {
        let c = random_circuit(seed.wrapping_add(700), 4, 15);
        let dag = DependencyDag::from_circuit(&c);
        if dag.is_empty() {
            continue;
        }
        let weights: Vec<f64> = (0..dag.len()).map(|i| 1.0 + (i % 5) as f64).collect();
        let span = dag.makespan(&weights);
        let total: f64 = weights.iter().sum();
        let max_w = weights.iter().copied().fold(0.0, f64::max);
        assert!(span <= total + 1e-9, "seed {seed}");
        assert!(span >= max_w - 1e-9, "seed {seed}");
    }
}

#[test]
fn gate_unitaries_respect_arity() {
    let kinds = [
        GateKind::H,
        GateKind::X,
        GateKind::Cx,
        GateKind::Cz,
        GateKind::Swap,
        GateKind::Ccx,
        GateKind::T,
        GateKind::ISwap,
    ];
    for k in kinds {
        let u = k.unitary(&[]);
        assert_eq!(u.rows(), 1 << k.num_qubits(), "{k:?}");
        assert!(u.is_unitary(1e-10), "{k:?}");
    }
}

/// A short random string biased heavily toward JSON-hostile characters:
/// quotes, backslashes, control characters, multi-byte code points —
/// plus `;` and space, the collapsed-stack format's own separators.
fn hostile_name(rng: &mut Rng) -> String {
    const PALETTE: [char; 14] = [
        '"', '\\', '\n', '\t', '\r', '\u{1}', '\u{7f}', '/', 'é', '→', 'a', '0', ';', ' ',
    ];
    let len = rng.random_range(1..12usize);
    (0..len)
        .map(|_| PALETTE[rng.random_range(0..PALETTE.len())])
        .collect()
}

/// Serializes the tests that mutate process-global telemetry state
/// (`set_enabled` / `reset` / kernel probes); the default test harness
/// runs them on concurrent threads otherwise.
static TELEMETRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn jsonl_export_roundtrips_hostile_names() {
    use paqoc::telemetry::{self, json, FieldValue};
    let _global = TELEMETRY_LOCK.lock().unwrap();
    telemetry::set_enabled(true);
    for seed in 0..CASES {
        telemetry::reset();
        let mut rng = Rng::seed_from_u64(0xBEEF ^ seed);
        let mut names: Vec<String> = (0..4).map(|_| hostile_name(&mut rng)).collect();
        names.sort();
        names.dedup();
        let field = hostile_name(&mut rng);
        {
            let _s = telemetry::span(&names[0]);
            for n in &names {
                telemetry::counter(n, 1);
                telemetry::observe(n, rng.random_range(-3.0..3.0f64));
                telemetry::event(n, &[("payload", FieldValue::from(field.as_str()))]);
            }
        }
        let snap = telemetry::snapshot();
        let mut seen: Vec<String> = Vec::new();
        for line in snap.to_jsonl().lines() {
            let v = json::parse(line)
                .unwrap_or_else(|e| panic!("seed {seed}: line does not parse: {e}\n{line}"));
            if let Some(name) = v.get("name").and_then(json::Value::as_str) {
                seen.push(name.to_string());
            }
            if v.get("type").and_then(json::Value::as_str) == Some("event") {
                let payload = v
                    .get("fields")
                    .and_then(|f| f.get("payload"))
                    .and_then(json::Value::as_str);
                assert_eq!(payload, Some(field.as_str()), "seed {seed}");
            }
        }
        for n in &names {
            assert!(seen.iter().any(|s| s == n), "seed {seed}: {n:?} lost");
        }
        // The Chrome-trace export of the same snapshot must also parse.
        json::parse(&snap.to_chrome_trace())
            .unwrap_or_else(|e| panic!("seed {seed}: chrome trace does not parse: {e}"));
    }
    telemetry::set_enabled(false);
    telemetry::reset();
}

#[test]
fn collapsed_stacks_and_chrome_tracks_survive_hostile_kernel_names() {
    use paqoc::telemetry::{self, json};
    let _global = TELEMETRY_LOCK.lock().unwrap();
    telemetry::set_enabled(true);
    telemetry::set_kernel_probes(Some(true));
    for seed in 0..CASES {
        telemetry::reset();
        let mut rng = Rng::seed_from_u64(0xF1A3 ^ seed);
        let span_name = hostile_name(&mut rng);
        // Kernel probes take `&'static str` names (production sites are
        // literals); leaking the random ones is fine in a test.
        let kernels: Vec<&'static str> = (0..3)
            .map(|_| &*Box::leak(hostile_name(&mut rng).into_boxed_str()))
            .collect();
        {
            let _s = telemetry::span(&span_name);
            for (i, name) in kernels.iter().enumerate() {
                let dim = 2 << i;
                let _probe = telemetry::kernel_enter(name, dim);
                telemetry::kernel_alloc(name, 1, (dim * dim) as u64);
            }
        }
        let snap = telemetry::snapshot();

        // Collapsed stacks: every line must be `frames value` where no
        // frame contains the separators (`;`, whitespace) or control
        // characters, whatever the span/kernel names threw at it.
        for line in snap.to_collapsed_stacks().lines() {
            let (stack, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("seed {seed}: no value in line {line:?}"));
            value
                .parse::<u64>()
                .unwrap_or_else(|e| panic!("seed {seed}: bad value in {line:?}: {e}"));
            assert!(!stack.is_empty(), "seed {seed}: empty stack in {line:?}");
            for frame in stack.split(';') {
                assert!(!frame.is_empty(), "seed {seed}: empty frame in {line:?}");
                assert!(
                    !frame.chars().any(|c| c.is_whitespace() || c.is_control()),
                    "seed {seed}: unsanitized frame {frame:?} in {line:?}"
                );
            }
        }

        // JSONL: the kernel records carry the raw names, escape-intact.
        let mut jsonl_names: Vec<String> = Vec::new();
        for line in snap.to_jsonl().lines() {
            let v = json::parse(line)
                .unwrap_or_else(|e| panic!("seed {seed}: line does not parse: {e}\n{line}"));
            if v.get("type").and_then(json::Value::as_str) == Some("kernel_total") {
                if let Some(name) = v.get("name").and_then(json::Value::as_str) {
                    jsonl_names.push(name.to_string());
                }
            }
        }
        for name in &kernels {
            assert!(
                jsonl_names.iter().any(|n| n == name),
                "seed {seed}: kernel {name:?} lost in JSONL export"
            );
        }

        // Chrome: the export must parse and the kernel counter tracks
        // must round-trip the raw names through their args.
        let chrome = json::parse(&snap.to_chrome_trace())
            .unwrap_or_else(|e| panic!("seed {seed}: chrome trace does not parse: {e}"));
        let Some(json::Value::Arr(events)) = chrome.get("traceEvents") else {
            panic!("seed {seed}: no traceEvents array");
        };
        let chrome_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("cat").and_then(json::Value::as_str) == Some("kernel"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("kernel")))
            .filter_map(json::Value::as_str)
            .collect();
        for name in &kernels {
            assert!(
                chrome_names.iter().any(|n| n == name),
                "seed {seed}: kernel {name:?} lost in Chrome export"
            );
        }
    }
    telemetry::set_kernel_probes(None);
    telemetry::set_enabled(false);
    telemetry::reset();
}
