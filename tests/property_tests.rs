//! Property-based tests over the workspace's core invariants.

use paqoc::circuit::{
    apply_gate_to_state, decompose, embed_unitary, Basis, Circuit, DependencyDag, GateKind,
};
use paqoc::device::{AnalyticModel, Device, PulseSource, Topology};
use paqoc::mapping::{sabre_map, SabreOptions};
use paqoc::math::{
    expm, random_unitary_seeded, trace_fidelity, weyl_coordinates, C64,
};
use paqoc::mining::{mine_frequent_subcircuits, CircuitGraph, MinerOptions, Reachability};
use proptest::prelude::*;

/// A strategy for small random circuits over a mixed gate set.
fn arb_circuit(max_qubits: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = (0u8..8, 0usize..max_qubits, 0usize..max_qubits, -3.0f64..3.0);
    (2usize..=max_qubits, proptest::collection::vec(gate, 1..max_gates)).prop_map(
        move |(n, gates)| {
            let mut c = Circuit::new(n);
            for (kind, a, b, theta) in gates {
                let a = a % n;
                let b = b % n;
                match kind {
                    0 => {
                        c.h(a);
                    }
                    1 => {
                        c.x(a);
                    }
                    2 => {
                        c.t(a);
                    }
                    3 => {
                        c.rz(a, theta);
                    }
                    4 | 5 if a != b => {
                        c.cx(a, b);
                    }
                    6 if a != b => {
                        c.cz(a, b);
                    }
                    7 if a != b => {
                        c.swap(a, b);
                    }
                    _ => {
                        c.sx(a);
                    }
                }
            }
            c
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn decomposition_preserves_the_unitary(c in arb_circuit(4, 12)) {
        let low = decompose(&c, Basis::Ibm);
        let f = trace_fidelity(&c.unitary(), &low.unitary());
        prop_assert!(f > 1.0 - 1e-8, "fidelity {f}");
    }

    #[test]
    fn circuit_unitaries_are_unitary(c in arb_circuit(4, 12)) {
        prop_assert!(c.unitary().is_unitary(1e-8));
    }

    #[test]
    fn state_application_matches_matrix_action(c in arb_circuit(3, 10)) {
        let u = c.unitary();
        let dim = 1usize << c.num_qubits();
        for col in [0usize, dim - 1] {
            let mut state = vec![C64::ZERO; dim];
            state[col] = C64::ONE;
            for inst in c.iter() {
                apply_gate_to_state(&inst.unitary(), inst.qubits(), &mut state);
            }
            for r in 0..dim {
                prop_assert!((state[r] - u[(r, col)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn expm_of_skew_hermitian_is_unitary(seed in 0u64..500) {
        // -i·H with random Hermitian H = A + A†.
        let a = random_unitary_seeded(4, seed);
        let h = &a + &a.dagger();
        let u = expm(&h.scaled(C64::new(0.0, -0.37)));
        prop_assert!(u.is_unitary(1e-8));
    }

    #[test]
    fn weyl_content_is_invariant_under_local_dressing(seed in 0u64..200) {
        let u = random_unitary_seeded(4, seed);
        let l1 = random_unitary_seeded(2, seed.wrapping_add(1000));
        let l2 = random_unitary_seeded(2, seed.wrapping_add(2000));
        let dressed = l1.kron(&l2).matmul(&u);
        let w1 = weyl_coordinates(&u).interaction_content();
        let w2 = weyl_coordinates(&dressed).interaction_content();
        prop_assert!((w1 - w2).abs() < 1e-3, "{w1} vs {w2}");
    }

    #[test]
    fn embedding_preserves_unitarity(seed in 0u64..100, q0 in 0usize..3, q1 in 0usize..3) {
        prop_assume!(q0 != q1);
        let g = random_unitary_seeded(4, seed);
        let e = embed_unitary(&g, &[q0, q1], 3);
        prop_assert!(e.is_unitary(1e-8));
    }

    #[test]
    fn sabre_routes_every_two_qubit_gate_onto_a_coupler(c in arb_circuit(5, 14)) {
        let topo = Topology::grid(3, 3);
        let lowered = decompose(&c, Basis::Ibm);
        let mapped = sabre_map(&lowered, &topo, &SabreOptions::default());
        for inst in mapped.circuit.iter() {
            if inst.qubits().len() == 2 {
                prop_assert!(topo.are_coupled(inst.qubits()[0], inst.qubits()[1]));
            }
        }
        prop_assert_eq!(mapped.circuit.len(), lowered.len() + mapped.swaps_inserted);
    }

    #[test]
    fn mined_instances_are_convex_and_capped(c in arb_circuit(5, 20)) {
        let opts = MinerOptions { max_qubits: 3, max_gates: 4, ..MinerOptions::default() };
        let graph = CircuitGraph::from_circuit(&c);
        let reach = Reachability::new(&graph);
        for p in mine_frequent_subcircuits(&c, &opts) {
            prop_assert!(p.num_qubits <= 3);
            prop_assert!(p.num_gates <= 4);
            prop_assert!(p.support() >= 2);
            for inst in &p.instances {
                prop_assert!(reach.is_convex(inst));
            }
        }
    }

    #[test]
    fn observation1_merging_is_subadditive(c in arb_circuit(3, 6)) {
        // Any whole-circuit group costs at most the sum of its gates.
        let device = Device::grid5x5();
        let mut model = AnalyticModel::new();
        let group: Vec<_> = c.instructions().to_vec();
        prop_assume!(!group.is_empty());
        let merged = model.generate(&group, &device, 0.999, None).latency_ns;
        let sum: f64 = group
            .iter()
            .map(|i| {
                model
                    .generate(std::slice::from_ref(i), &device, 0.999, None)
                    .latency_ns
            })
            .sum();
        prop_assert!(merged <= sum * 1.01, "merged {merged} vs sum {sum}");
    }

    #[test]
    fn dag_critical_path_bounds_total_weight(c in arb_circuit(4, 15)) {
        let dag = DependencyDag::from_circuit(&c);
        prop_assume!(!dag.is_empty());
        let weights: Vec<f64> = (0..dag.len()).map(|i| 1.0 + (i % 5) as f64).collect();
        let span = dag.makespan(&weights);
        let total: f64 = weights.iter().sum();
        let max_w = weights.iter().copied().fold(0.0, f64::max);
        prop_assert!(span <= total + 1e-9);
        prop_assert!(span >= max_w - 1e-9);
    }

    #[test]
    fn gate_unitaries_respect_arity(kind in 0usize..8) {
        let kinds = [
            GateKind::H,
            GateKind::X,
            GateKind::Cx,
            GateKind::Cz,
            GateKind::Swap,
            GateKind::Ccx,
            GateKind::T,
            GateKind::ISwap,
        ];
        let k = kinds[kind];
        let u = k.unitary(&[]);
        prop_assert_eq!(u.rows(), 1 << k.num_qubits());
        prop_assert!(u.is_unitary(1e-10));
    }
}
