//! End-to-end integration tests spanning the whole workspace:
//! workloads → lowering → SABRE → mining → criticality merging → pulses,
//! against the AccQOC baseline.

use paqoc::accqoc::{compile_accqoc, AccqocOptions};
use paqoc::circuit::Circuit;
use paqoc::core::{compile, PipelineOptions};
use paqoc::device::{AnalyticModel, Device};
use paqoc::workloads::benchmark;

fn build(name: &str) -> Circuit {
    (benchmark(name).expect(name).build)()
}

#[test]
fn paqoc_beats_accqoc_on_every_tested_benchmark() {
    let device = Device::grid5x5();
    for name in ["rd32_270", "simon", "qaoa", "bb84"] {
        let c = build(name);
        let mut s1 = AnalyticModel::new();
        let acc = compile_accqoc(&c, &device, &mut s1, &AccqocOptions::n3d3());
        let mut s2 = AnalyticModel::new();
        let pq = compile(&c, &device, &mut s2, &PipelineOptions::m0());
        assert!(
            pq.latency_dt <= acc.latency_dt,
            "{name}: paqoc {} dt vs accqoc {} dt",
            pq.latency_dt,
            acc.latency_dt
        );
        assert!(
            pq.esp >= acc.esp,
            "{name}: paqoc ESP {} vs accqoc ESP {} (the paper's constraint)",
            pq.esp,
            acc.esp
        );
    }
}

#[test]
fn compilation_is_deterministic_end_to_end() {
    let device = Device::grid5x5();
    let c = build("simon");
    let run = || {
        let mut s = AnalyticModel::new();
        let r = compile(&c, &device, &mut s, &PipelineOptions::m_tuned());
        (r.latency_dt, r.num_groups(), r.stats.pulses_generated)
    };
    assert_eq!(run(), run());
}

#[test]
fn final_grouping_partitions_the_physical_circuit() {
    let device = Device::grid5x5();
    let c = build("rd32_270");
    let mut s = AnalyticModel::new();
    let r = compile(&c, &device, &mut s, &PipelineOptions::m_inf());
    let total: usize = r
        .grouped
        .group_ids()
        .into_iter()
        .map(|id| r.grouped.group(id).instructions.len())
        .sum();
    assert_eq!(total, r.physical.len(), "no gate lost or duplicated");
}

#[test]
fn every_group_respects_the_qubit_cap() {
    let device = Device::grid5x5();
    let c = build("qaoa");
    let mut s = AnalyticModel::new();
    let r = compile(&c, &device, &mut s, &PipelineOptions::m0());
    for id in r.grouped.group_ids() {
        assert!(r.grouped.group(id).qubits.len() <= 3);
    }
}

#[test]
fn every_group_has_a_pulse_attached() {
    let device = Device::grid5x5();
    let c = build("simon");
    let mut s = AnalyticModel::new();
    let r = compile(&c, &device, &mut s, &PipelineOptions::m0());
    for id in r.grouped.group_ids() {
        let g = r.grouped.group(id);
        assert!(g.latency_ns > 0.0);
        assert!(g.fidelity > 0.99 && g.fidelity <= 1.0);
    }
}

#[test]
fn apa_budgets_trade_compile_cost_for_latency() {
    // On a pattern-rich workload: inf spends less compile cost than m0,
    // at no more than a modest latency premium.
    let device = Device::grid5x5();
    let c = build("qaoa");
    let mut s = AnalyticModel::new();
    let m0 = compile(&c, &device, &mut s, &PipelineOptions::m0());
    let mut s = AnalyticModel::new();
    let mi = compile(&c, &device, &mut s, &PipelineOptions::m_inf());
    assert!(mi.stats.cost_units < m0.stats.cost_units);
    assert!((mi.latency_dt as f64) < m0.latency_dt as f64 * 1.1);
    assert!(mi.apa.num_apa_gates() > 0);
}

#[test]
fn disabled_generator_still_produces_a_valid_schedule() {
    let device = Device::grid5x5();
    let c = build("bb84");
    let mut s = AnalyticModel::new();
    let r = compile(
        &c,
        &device,
        &mut s,
        &PipelineOptions {
            enable_generator: false,
            ..PipelineOptions::m_inf()
        },
    );
    assert!(r.latency_dt > 0);
    assert_eq!(
        r.grouped
            .group_ids()
            .into_iter()
            .map(|id| r.grouped.group(id).instructions.len())
            .sum::<usize>(),
        r.physical.len()
    );
}
