//! QASM round-trips across the workload suite.

use paqoc::circuit::{parse_qasm, to_qasm};
use paqoc::math::trace_fidelity;
use paqoc::workloads::all_benchmarks;

#[test]
fn every_benchmark_roundtrips_through_qasm() {
    for b in all_benchmarks() {
        let c = (b.build)();
        let text = to_qasm(&c);
        let parsed = parse_qasm(&text).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(parsed.num_qubits(), c.num_qubits(), "{}", b.name);
        assert_eq!(parsed.len(), c.len(), "{}", b.name);
    }
}

#[test]
fn small_benchmark_roundtrip_preserves_unitary() {
    // simon is small enough for a full unitary check (6 qubits).
    let b = paqoc::workloads::benchmark("simon").expect("simon exists");
    let c = (b.build)();
    let parsed = parse_qasm(&to_qasm(&c)).expect("roundtrip");
    let f = trace_fidelity(&c.unitary(), &parsed.unitary());
    assert!(f > 1.0 - 1e-9, "fidelity {f}");
}

/// Seeded property test: the parser must be total. Random byte-prefixes
/// of every benchmark's QASM — most of which cut a statement in half —
/// and random in-place garbage mutations must come back as
/// `Err(ParseQasmError)` or (when the damage happens to be benign) a
/// parsed circuit, but **never** a panic. Regression cover for the
/// reversed-bracket slice panics (`h ]q[0;`).
#[test]
fn truncated_and_garbled_qasm_never_panics() {
    use paqoc::math::Rng;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let mut rng = Rng::seed_from_u64(0x9A5_1234);
    // Bytes biased toward structural QASM characters so mutations hit
    // the bracket/operand machinery, not just identifiers.
    const NASTY: &[u8] = b"[]();,. qcx0123456789-";

    for b in all_benchmarks() {
        let text = to_qasm(&(b.build)());
        let qreg_end = text.find(';').expect("qasm has statements");

        for _ in 0..64 {
            // Random prefix (never empty, can be the whole file).
            let cut = 1 + (rng.next_u64() as usize) % text.len();
            let prefix: String = text.chars().take(cut).collect();
            let result = catch_unwind(AssertUnwindSafe(|| parse_qasm(&prefix)));
            let result = result
                .unwrap_or_else(|_| panic!("{}: parser panicked on prefix of {cut} chars", b.name));
            if cut <= qreg_end {
                assert!(
                    result.is_err(),
                    "{}: a prefix with no complete qreg parsed as Ok",
                    b.name
                );
            }

            // Garble 1–8 bytes of the full text in place (ASCII→ASCII
            // substitutions keep it valid UTF-8).
            let mut bytes = text.clone().into_bytes();
            for _ in 0..1 + rng.next_u64() % 8 {
                let at = (rng.next_u64() as usize) % bytes.len();
                bytes[at] = NASTY[(rng.next_u64() as usize) % NASTY.len()];
            }
            let garbled = String::from_utf8(bytes).expect("ascii substitutions");
            let _ = catch_unwind(AssertUnwindSafe(|| parse_qasm(&garbled))).unwrap_or_else(|_| {
                panic!("{}: parser panicked on garbled input:\n{garbled}", b.name)
            });
        }
    }
}
