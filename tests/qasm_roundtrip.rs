//! QASM round-trips across the workload suite.

use paqoc::circuit::{parse_qasm, to_qasm};
use paqoc::math::trace_fidelity;
use paqoc::workloads::all_benchmarks;

#[test]
fn every_benchmark_roundtrips_through_qasm() {
    for b in all_benchmarks() {
        let c = (b.build)();
        let text = to_qasm(&c);
        let parsed = parse_qasm(&text).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(parsed.num_qubits(), c.num_qubits(), "{}", b.name);
        assert_eq!(parsed.len(), c.len(), "{}", b.name);
    }
}

#[test]
fn small_benchmark_roundtrip_preserves_unitary() {
    // simon is small enough for a full unitary check (6 qubits).
    let b = paqoc::workloads::benchmark("simon").expect("simon exists");
    let c = (b.build)();
    let parsed = parse_qasm(&to_qasm(&c)).expect("roundtrip");
    let f = trace_fidelity(&c.unitary(), &parsed.unitary());
    assert!(f > 1.0 - 1e-9, "fidelity {f}");
}
