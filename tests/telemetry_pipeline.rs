//! End-to-end telemetry integration: a real compilation must emit the
//! documented phase spans and counters, and the telemetry view must
//! agree with the pipeline's own accounting.
//!
//! Telemetry state is process-global, so this lives in its own test
//! binary (integration tests each get their own process) and runs the
//! pipeline exactly once up front.

use paqoc::circuit::Circuit;
use paqoc::core::{compile, PipelineOptions};
use paqoc::device::{AnalyticModel, Device};
use paqoc::telemetry;

fn qaoa_like() -> Circuit {
    let mut c = Circuit::new(4);
    for _ in 0..2 {
        for (a, b) in [(0usize, 1usize), (1, 2), (2, 3)] {
            c.cp(a, b, 0.7);
        }
        for q in 0..4 {
            c.rx(q, 0.35);
        }
    }
    c
}

#[test]
fn compile_emits_phase_spans_and_matching_counters() {
    telemetry::set_enabled(true);
    telemetry::reset();
    let device = Device::grid5x5();
    let mut source = AnalyticModel::new();
    let result = compile(
        &qaoa_like(),
        &device,
        &mut source,
        &PipelineOptions::m_inf(),
    );
    let snap = telemetry::snapshot();
    telemetry::set_enabled(false);

    // The documented span taxonomy, all nested under `compile`.
    let compile_span = snap.spans_named("compile");
    assert_eq!(compile_span.len(), 1);
    let root = compile_span[0];
    assert_eq!(root.parent, None);
    for phase in ["lower", "map", "mine", "group", "generate"] {
        let spans = snap.spans_named(phase);
        assert_eq!(spans.len(), 1, "expected exactly one `{phase}` span");
        assert_eq!(
            spans[0].parent,
            Some(root.id),
            "`{phase}` nests under compile"
        );
        assert!(root.duration_ns >= spans[0].duration_ns);
    }

    // The phase spans cover most of the compile span.
    let phase_total: u64 = ["lower", "map", "mine", "group", "generate"]
        .iter()
        .map(|p| snap.spans_named(p)[0].duration_ns)
        .sum();
    assert!(phase_total <= root.duration_ns);

    // Telemetry's pulse-table counters agree with CompileStats.
    let sum_prefix = |prefix: &str| -> u64 {
        snap.counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    };
    assert_eq!(
        sum_prefix("table.cache_hit.") as usize,
        result.stats.cache_hits,
        "telemetry cache hits must equal CompileStats::cache_hits"
    );
    assert_eq!(
        sum_prefix("table.cache_miss.") as usize,
        result.stats.pulses_generated,
        "every miss generates exactly one pulse"
    );

    // The generator loop reported its work through both channels too.
    assert_eq!(
        snap.counters
            .get("generator.iterations")
            .copied()
            .unwrap_or(0) as usize,
        result.report.iterations
    );
    assert_eq!(
        snap.counters
            .get("generator.preprocess_merges")
            .copied()
            .unwrap_or(0) as usize,
        result.report.preprocess_merges
    );

    // An M=inf run on a QAOA-like circuit accepts APA occurrences.
    assert!(snap.counters.get("apa.accepted").copied().unwrap_or(0) > 0);

    // And the JSONL export of this real run round-trips line by line.
    let jsonl = snap.to_jsonl();
    for line in jsonl.lines() {
        telemetry::json::parse(line).expect("every exported line parses");
    }
}
