//! End-to-end telemetry integration: a real compilation must emit the
//! documented phase spans and counters, and the telemetry view must
//! agree with the pipeline's own accounting.
//!
//! Telemetry state is process-global, so this lives in its own test
//! binary (integration tests each get their own process) and runs the
//! pipeline exactly once up front.

use paqoc::circuit::Circuit;
use paqoc::core::{compile, PipelineOptions};
use paqoc::device::{AnalyticModel, Device};
use paqoc::telemetry;

fn qaoa_like() -> Circuit {
    let mut c = Circuit::new(4);
    for _ in 0..2 {
        for (a, b) in [(0usize, 1usize), (1, 2), (2, 3)] {
            c.cp(a, b, 0.7);
        }
        for q in 0..4 {
            c.rx(q, 0.35);
        }
    }
    c
}

#[test]
fn compile_emits_phase_spans_and_matching_counters() {
    telemetry::set_enabled(true);
    telemetry::reset();
    let device = Device::grid5x5();
    let mut source = AnalyticModel::new();
    let result = compile(
        &qaoa_like(),
        &device,
        &mut source,
        &PipelineOptions::m_inf(),
    );
    let snap = telemetry::snapshot();
    telemetry::set_enabled(false);

    // The documented span taxonomy, all nested under `compile`.
    let compile_span = snap.spans_named("compile");
    assert_eq!(compile_span.len(), 1);
    let root = compile_span[0];
    assert_eq!(root.parent, None);
    for phase in ["lower", "map", "mine", "group", "generate"] {
        let spans = snap.spans_named(phase);
        assert_eq!(spans.len(), 1, "expected exactly one `{phase}` span");
        assert_eq!(
            spans[0].parent,
            Some(root.id),
            "`{phase}` nests under compile"
        );
        assert!(root.duration_ns >= spans[0].duration_ns);
    }

    // The phase spans cover most of the compile span.
    let phase_total: u64 = ["lower", "map", "mine", "group", "generate"]
        .iter()
        .map(|p| snap.spans_named(p)[0].duration_ns)
        .sum();
    assert!(phase_total <= root.duration_ns);

    // Telemetry's pulse-table counters agree with CompileStats.
    let sum_prefix = |prefix: &str| -> u64 {
        snap.counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    };
    assert_eq!(
        sum_prefix("table.cache_hit.") as usize,
        result.stats.cache_hits,
        "telemetry cache hits must equal CompileStats::cache_hits"
    );
    assert_eq!(
        sum_prefix("table.cache_miss.") as usize,
        result.stats.pulses_generated,
        "every miss generates exactly one pulse"
    );

    // The generator loop reported its work through both channels too.
    assert_eq!(
        snap.counters
            .get("generator.iterations")
            .copied()
            .unwrap_or(0) as usize,
        result.report.iterations
    );
    assert_eq!(
        snap.counters
            .get("generator.preprocess_merges")
            .copied()
            .unwrap_or(0) as usize,
        result.report.preprocess_merges
    );

    // An M=inf run on a QAOA-like circuit accepts APA occurrences.
    assert!(snap.counters.get("apa.accepted").copied().unwrap_or(0) > 0);

    // The event journal carries the criticality search's decisions:
    // exactly one `search.iteration` event per counted merge iteration.
    let iteration_events: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.name == "search.iteration")
        .collect();
    assert_eq!(
        iteration_events.len(),
        result.report.iterations,
        "one decision event per merge iteration"
    );
    let generate_span = snap.spans_named("generate")[0];
    for e in &iteration_events {
        assert_eq!(
            e.span,
            Some(generate_span.id),
            "search events nest under the generate span"
        );
    }
    // Committed merges in the journal agree with the report.
    let committed: u64 = iteration_events
        .iter()
        .map(|e| {
            e.fields
                .iter()
                .find(|(k, _)| k == "committed")
                .and_then(|(_, v)| match v {
                    telemetry::FieldValue::U64(n) => Some(*n),
                    _ => None,
                })
                .expect("committed field present")
        })
        .sum();
    assert_eq!(committed as usize, result.report.criticality_merges);

    // Every pulse attachment journals predicted vs realized latency, and
    // with the analytic model as the pulse source the estimator must be
    // conservative: realized latency never exceeds the prediction by
    // more than float noise (well under one device cycle).
    let err = &snap.histograms["search.predicted_latency_error_ns"];
    assert_eq!(
        err.count as usize,
        snap.events
            .iter()
            .filter(|e| e.name == "pulse.attach")
            .count()
    );
    assert!(
        err.max <= 1.0,
        "estimator must be conservative: max realized-minus-predicted \
         was {} ns",
        err.max
    );
    assert!(err.p99() <= 1.0, "p99 error {} ns", err.p99());

    // And the JSONL export of this real run round-trips line by line.
    let jsonl = snap.to_jsonl();
    let mut event_lines = 0usize;
    for line in jsonl.lines() {
        let v = telemetry::json::parse(line).expect("every exported line parses");
        if v.get("type").and_then(telemetry::json::Value::as_str) == Some("event") {
            event_lines += 1;
        }
    }
    assert_eq!(event_lines, snap.events.len());

    // The Chrome-trace view of the same run parses and names the phases.
    let trace = snap.to_chrome_trace();
    let doc = telemetry::json::parse(&trace).expect("chrome trace parses");
    let Some(telemetry::json::Value::Arr(tev)) = doc.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    for phase in ["compile", "lower", "map", "mine", "group", "generate"] {
        assert!(
            tev.iter().any(|e| {
                e.get("name").and_then(telemetry::json::Value::as_str) == Some(phase)
                    && e.get("ph").and_then(telemetry::json::Value::as_str) == Some("X")
            }),
            "phase `{phase}` missing from the chrome trace"
        );
    }
}
