//! End-to-end tests of the persistent pulse store through the pipeline:
//! cold→warm double compilation of all 17 embedded benchmarks (the warm
//! pass must perform **zero** pulse generations), warm-start of the real
//! GRAPE source, panic-storm isolation, and graceful degradation when
//! the store path is unusable.
//!
//! Every compilation in this binary passes an explicit
//! `PipelineOptions::pulse_db` (or sets it to an unwritable path), so
//! the one test that exercises the `PAQOC_PULSE_DB` environment
//! fallback cannot contaminate its neighbours.

use paqoc::circuit::Circuit;
use paqoc::core::{try_compile, CompilationResult, Degradation, PipelineOptions};
use paqoc::device::{AnalyticModel, Device, FaultConfig, FaultySource};
use paqoc::grape::GrapeSource;
use paqoc::workloads::all_benchmarks;
use std::path::{Path, PathBuf};

fn tmp_db(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paqoc-pulse-store-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn opts_with_db(db: PathBuf) -> PipelineOptions {
    PipelineOptions {
        pulse_db: Some(db),
        ..PipelineOptions::m_inf()
    }
}

fn compile_all(db: &Path) -> Vec<(&'static str, CompilationResult)> {
    let device = Device::grid5x5();
    let opts = opts_with_db(db.to_path_buf());
    all_benchmarks()
        .iter()
        .map(|b| {
            let circuit = (b.build)();
            let mut source = AnalyticModel::new();
            let r = try_compile(&circuit, &device, &mut source, &opts)
                .unwrap_or_else(|e| panic!("{} failed: {e}", b.name));
            (b.name, r)
        })
        .collect()
}

/// The tentpole acceptance criterion: after one cold compilation of all
/// 17 benchmarks, a second compilation of the same set performs zero
/// pulse generations — every estimate is served from the store — and
/// produces identical schedules.
#[test]
fn warm_pass_over_all_benchmarks_generates_zero_pulses() {
    let db = tmp_db("warm_all.db");
    let cold = compile_all(&db);
    assert!(
        cold.iter().any(|(_, r)| r.stats.pulses_generated > 0),
        "cold pass should have generated at least one pulse"
    );

    let warm = compile_all(&db);
    for ((name, c), (_, w)) in cold.iter().zip(&warm) {
        assert_eq!(
            w.stats.pulses_generated, 0,
            "{name}: warm pass generated {} pulses",
            w.stats.pulses_generated
        );
        assert!(
            w.stats.store_hits > 0,
            "{name}: warm pass never hit the store"
        );
        assert!(
            w.degradations.is_empty(),
            "{name}: warm pass degraded: {:?}",
            w.degradations
        );
        assert_eq!(w.latency_dt, c.latency_dt, "{name}: warm latency differs");
        assert_eq!(w.esp, c.esp, "{name}: warm esp differs");
    }
}

/// Same criterion against the real optimizer: a fresh `GrapeSource`
/// reading a warmed store performs zero GRAPE optimizations.
#[test]
fn warm_pass_skips_grape_entirely() {
    let db = tmp_db("warm_grape.db");
    let device = Device::line(3);
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).cx(1, 2).rz(2, 0.3);
    let opts = PipelineOptions {
        skip_mapping: true,
        pulse_db: Some(db),
        ..PipelineOptions::m0()
    };

    let mut cold_grape = GrapeSource::fast();
    let cold = try_compile(&c, &device, &mut cold_grape, &opts).expect("cold compile");
    assert!(cold.stats.pulses_generated > 0);
    assert!(
        cold_grape.cache_len() > 0,
        "cold pass should have run GRAPE"
    );

    let mut warm_grape = GrapeSource::fast();
    let warm = try_compile(&c, &device, &mut warm_grape, &opts).expect("warm compile");
    assert_eq!(warm.stats.pulses_generated, 0);
    assert_eq!(
        warm_grape.cache_len(),
        0,
        "warm pass must not invoke GRAPE at all"
    );
    assert_eq!(warm.latency_dt, cold.latency_dt);
}

/// A pulse source that panics on every call must degrade — typed
/// `Degradation::SourcePanic` entries, analytic estimates — not abort
/// the process, and nothing it touched may be cached persistently.
#[test]
fn panic_storm_degrades_instead_of_aborting() {
    let db = tmp_db("panic_storm.db");
    let device = Device::grid5x5();
    let circuit = (all_benchmarks()[0].build)();
    let mut source = FaultySource::new(AnalyticModel::new(), FaultConfig::panic_storm(7, 1.0));
    let r = try_compile(&circuit, &device, &mut source, &opts_with_db(db.clone()))
        .expect("panic storm must not abort compilation");

    assert!(r.stats.source_panics > 0, "no panic was recorded");
    assert!(
        r.degradations
            .iter()
            .any(|d| matches!(d, Degradation::SourcePanic { .. })),
        "degradations carry no SourcePanic: {:?}",
        r.degradations
    );
    assert!(r.latency_dt > 0);
    assert!(r.esp.is_finite());

    // Nothing produced under panic quarantine may have been persisted:
    // a later clean compilation must regenerate everything.
    let mut clean = AnalyticModel::new();
    let r2 = try_compile(&circuit, &device, &mut clean, &opts_with_db(db))
        .expect("clean compile after storm");
    assert_eq!(
        r2.stats.store_hits, 0,
        "quarantined pulses leaked into the store"
    );
}

/// A store path that cannot be opened (here: an existing directory)
/// degrades to in-memory compilation with a `StoreUnavailable` entry —
/// never an error.
#[test]
fn unusable_store_path_degrades_to_in_memory() {
    let dir = std::env::temp_dir().join(format!("paqoc-store-as-dir-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("dir");
    let device = Device::grid5x5();
    let circuit = (all_benchmarks()[0].build)();
    let mut source = AnalyticModel::new();
    let r = try_compile(&circuit, &device, &mut source, &opts_with_db(dir))
        .expect("compile with unusable store");
    assert!(
        r.degradations
            .iter()
            .any(|d| matches!(d, Degradation::StoreUnavailable { .. })),
        "expected StoreUnavailable, got {:?}",
        r.degradations
    );
    assert!(
        r.stats.pulses_generated > 0,
        "must fall back to live generation"
    );
    assert_eq!(r.stats.store_hits, 0);
}

/// The `PAQOC_PULSE_DB` environment variable is the zero-code way to
/// turn persistence on; `PipelineOptions::pulse_db = None` consults it.
#[test]
fn env_var_fallback_warm_starts() {
    let db = tmp_db("env_fallback.db");
    let device = Device::grid5x5();
    let circuit = (all_benchmarks()[1].build)();
    let opts = PipelineOptions::m_inf(); // pulse_db: None → env fallback
    std::env::set_var("PAQOC_PULSE_DB", &db);

    let mut s1 = AnalyticModel::new();
    let cold = try_compile(&circuit, &device, &mut s1, &opts).expect("cold env compile");
    let mut s2 = AnalyticModel::new();
    let warm = try_compile(&circuit, &device, &mut s2, &opts).expect("warm env compile");
    std::env::remove_var("PAQOC_PULSE_DB");

    assert!(cold.stats.pulses_generated > 0);
    assert_eq!(warm.stats.pulses_generated, 0);
    assert!(warm.stats.store_hits > 0);
}

/// Two different devices sharing one logical workload must not share a
/// store file: the second device's fingerprint rejects the first's
/// records and rotates the file rather than serving wrong pulses.
#[test]
fn foreign_device_store_is_rotated_not_reused() {
    let db = tmp_db("foreign_device.db");
    let circuit = (all_benchmarks()[2].build)();

    let grid = Device::grid5x5();
    let mut s1 = AnalyticModel::new();
    let r1 = try_compile(&circuit, &grid, &mut s1, &opts_with_db(db.clone())).expect("grid");
    assert!(r1.stats.pulses_generated > 0);

    let line = Device::line(25);
    let mut s2 = AnalyticModel::new();
    let r2 = try_compile(&circuit, &line, &mut s2, &opts_with_db(db)).expect("line");
    assert_eq!(r2.stats.store_hits, 0, "foreign pulses must not be served");
    assert!(r2.stats.pulses_generated > 0);
}
