//! Pulse-level deep dive: synthesize a CX pulse with real GRAPE, print
//! the control schedule, re-propagate it through the Schrödinger
//! equation, and verify the realized unitary.
//!
//! Run with: `cargo run --release --example pulse_grape`

use paqoc::circuit::GateKind;
use paqoc::device::{transmon_xy_controls, HardwareSpec};
use paqoc::grape::{minimize_duration, propagate, GrapeOptions};
use paqoc::math::trace_fidelity;

fn main() {
    let spec = HardwareSpec::transmon_xy();
    let controls = transmon_xy_controls(2, &[(0, 1)], &spec);
    let target = GateKind::Cx.unitary(&[]);

    let opts = GrapeOptions {
        target_fidelity: 0.99,
        max_iters: 400,
        ..GrapeOptions::default()
    };
    let search = minimize_duration(&target, &controls, &opts, 28, None)
        .expect("CX is reachable under the transmon-XY controls");

    let pulse = &search.result.pulse;
    println!(
        "minimum-duration CX pulse: {} steps × {} ns = {:.1} ns ({} dt), fidelity {:.4}",
        pulse.num_steps(),
        pulse.step_ns,
        pulse.duration_ns(),
        spec.ns_to_dt(pulse.duration_ns()),
        search.result.fidelity
    );
    println!(
        "search: {} duration trials, {} total ADAM iterations",
        search.trials, search.total_iterations
    );

    println!("\ncontrol amplitudes (GHz), first 6 steps:");
    print!("{:>6}", "step");
    for name in &pulse.channel_names {
        print!("{name:>10}");
    }
    println!();
    for (j, row) in pulse.amplitudes.iter().take(6).enumerate() {
        print!("{j:>6}");
        for amp in row {
            print!("{amp:>10.4}");
        }
        println!();
    }

    // Independent verification: re-propagate and compare.
    let realized = propagate(pulse, &controls);
    let fidelity = trace_fidelity(&target, &realized);
    println!("\nre-propagated fidelity against CX: {fidelity:.6}");
    assert!(fidelity > 0.98);
}
