//! Frequent-subcircuit mining on the Cuccaro adder: the miner rediscovers
//! the MAJ/UMA building blocks (paper Table III) from the routed netlist
//! without being told anything about adders.
//!
//! Run with: `cargo run --release --example adder_mining`

use paqoc::circuit::{decompose, Basis};
use paqoc::device::Device;
use paqoc::mapping::{sabre_map, SabreOptions};
use paqoc::mining::{mine_frequent_subcircuits, select_apa_basis, ApaBudget, MinerOptions};
use paqoc::workloads::benchmark;

fn main() {
    let adder = (benchmark("adder").expect("adder is registered").build)();
    let device = Device::grid5x5();

    let lowered = decompose(&adder, Basis::Extended);
    let mapped = sabre_map(&lowered, device.topology(), &SabreOptions::default());
    let physical = decompose(&mapped.circuit, Basis::Extended);
    println!(
        "logical {} gates -> physical {} gates ({} SWAPs inserted by SABRE)",
        adder.len(),
        physical.len(),
        mapped.swaps_inserted
    );

    let patterns = mine_frequent_subcircuits(&physical, &MinerOptions::default());
    println!("\ntop mined patterns (by circuit coverage):");
    for p in patterns.iter().take(5) {
        println!(
            "  {:>3} occurrences × {} gates on {} qubits: {}",
            p.support(),
            p.num_gates,
            p.num_qubits,
            p.code
        );
    }

    let cover = select_apa_basis(&patterns, ApaBudget::Tuned, physical.len());
    println!(
        "\nAPA(M=tuned) selection: {} APA-basis gates covering {}/{} gates",
        cover.num_apa_gates(),
        cover.covered_gates,
        physical.len()
    );
}
