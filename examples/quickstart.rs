//! Quickstart: compile a small circuit to pulses with PAQOC and print
//! the customized gates the framework built.
//!
//! Run with: `cargo run --release --example quickstart`

use paqoc::circuit::Circuit;
use paqoc::core::{compile, PipelineOptions};
use paqoc::device::{AnalyticModel, Device};

fn main() {
    // A GHZ-preparation circuit with a few phase kicks.
    let mut circuit = Circuit::new(4);
    circuit.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
    circuit.rz(3, 0.7).cx(2, 3).cx(1, 2).cx(0, 1).h(0);

    let device = Device::grid5x5();
    let mut source = AnalyticModel::new();

    let result = compile(&circuit, &device, &mut source, &PipelineOptions::m0());

    println!("physical gates      : {}", result.physical.len());
    println!("customized gates    : {}", result.num_groups());
    println!(
        "circuit latency     : {} dt ({:.1} ns)",
        result.latency_dt, result.latency_ns
    );
    println!("estimated success   : {:.2}%", result.esp * 100.0);
    println!("pulses generated    : {}", result.stats.pulses_generated);
    println!("pulse-table hits    : {}", result.stats.cache_hits);
    println!();
    println!("final gate groups (topological order):");
    for id in result.grouped.topological_order() {
        let g = result.grouped.group(id);
        let labels: Vec<String> = g.instructions.iter().map(|i| i.label()).collect();
        println!(
            "  [{:>6.1} ns on qubits {:?}] {}",
            g.latency_ns,
            g.qubits,
            labels.join(" · ")
        );
    }
}
