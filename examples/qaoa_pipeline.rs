//! The paper's flagship scenario: a parameterized QAOA circuit compiled
//! with all three PAQOC modes (M = 0 / tuned / inf) and the AccQOC
//! baseline, showing the latency/compile-cost tradeoff and the mined
//! CPHASE APA-basis gates.
//!
//! Run with: `cargo run --release --example qaoa_pipeline`

use paqoc::accqoc::{compile_accqoc, AccqocOptions};
use paqoc::core::{compile, PipelineOptions};
use paqoc::device::{AnalyticModel, Device};
use paqoc::workloads::benchmark;

fn main() {
    let qaoa = (benchmark("qaoa").expect("qaoa is registered").build)();
    let device = Device::grid5x5();

    println!(
        "{:<16} {:>12} {:>10} {:>12} {:>8}",
        "config", "latency(dt)", "ESP", "cost(units)", "pulses"
    );

    let mut src = AnalyticModel::new();
    let acc = compile_accqoc(&qaoa, &device, &mut src, &AccqocOptions::n3d3());
    println!(
        "{:<16} {:>12} {:>9.2}% {:>12.1} {:>8}",
        "accqoc_n3d3",
        acc.latency_dt,
        acc.esp * 100.0,
        acc.stats.cost_units,
        acc.stats.pulses_generated
    );

    for (name, opts) in [
        ("paqoc(M=0)", PipelineOptions::m0()),
        ("paqoc(M=tuned)", PipelineOptions::m_tuned()),
        ("paqoc(M=inf)", PipelineOptions::m_inf()),
    ] {
        let mut src = AnalyticModel::new();
        let r = compile(&qaoa, &device, &mut src, &opts);
        println!(
            "{:<16} {:>12} {:>9.2}% {:>12.1} {:>8}",
            name,
            r.latency_dt,
            r.esp * 100.0,
            r.stats.cost_units,
            r.stats.pulses_generated
        );
        if !r.apa.selections.is_empty() && name == "paqoc(M=inf)" {
            println!("\nAPA-basis gates mined from the routed QAOA circuit:");
            for sel in &r.apa.selections {
                println!(
                    "  {} gates × {} uses: {}",
                    sel.num_gates,
                    sel.occurrences.len(),
                    sel.code
                );
            }
        }
    }
}
