//! # paqoc
//!
//! A reproduction of **PAQOC** — *"A Pulse Generation Framework with
//! Augmented Program-aware Basis Gates and Criticality Analysis"*
//! (HPCA 2023) — as a Rust workspace. This facade crate re-exports the
//! member crates:
//!
//! * [`math`] — complex linear algebra (matrices, `expm`, Weyl
//!   coordinates, fidelities);
//! * [`circuit`] — the circuit IR, dependence DAG, basis lowering, QASM;
//! * [`device`] — topologies, transmon-XY control Hamiltonians, the
//!   analytic latency model behind [`device::PulseSource`];
//! * [`grape`] — the real GRAPE optimizer, minimum-duration search and
//!   pulse simulation;
//! * [`mapping`] — SABRE qubit mapping/routing;
//! * [`mining`] — frequent-subcircuit mining and APA-basis selection;
//! * [`core`] — PAQOC itself: criticality-aware customized gates,
//!   the pulse table and the end-to-end [`core::compile`] pipeline;
//! * [`accqoc`] — the AccQOC baseline;
//! * [`workloads`] — the seventeen Table-I benchmarks and the
//!   150-circuit observation corpus;
//! * [`telemetry`] — zero-dependency phase spans, pipeline counters and
//!   JSONL traces (enable with the `PAQOC_TRACE` environment variable
//!   or `PipelineOptions::trace`);
//! * [`store`] — the crash-safe persistent pulse store behind
//!   `PAQOC_PULSE_DB` / `PipelineOptions::pulse_db`: CRC-guarded
//!   append-only records, device-fingerprinted headers, torn-tail and
//!   corruption recovery;
//! * [`exec`] — the parallel batch-compilation executor: work-stealing
//!   std-thread pool over explicit pulse jobs, the sharded
//!   [`exec::SharedPulseTable`] with in-flight dedup and store
//!   read-through, and the per-job-seeded source factories that make
//!   `threads = 1` and `threads = N` bit-identical (knob:
//!   `PAQOC_THREADS` / `PipelineOptions::threads`, entry:
//!   [`core::try_compile_batch`]);
//! * [`serve`] — the fault-tolerant resident compilation service: the
//!   `paqoc-serve` daemon (per-tenant admission control, deadline
//!   propagation, overload shedding, graceful SIGTERM drain, warm
//!   store-backed restarts) and the `paqoc-load` client/load-generator
//!   speaking a length-prefixed JSON protocol over TCP or unix
//!   sockets.
//!
//! ## Quickstart
//!
//! ```
//! use paqoc::circuit::Circuit;
//! use paqoc::core::{compile, PipelineOptions};
//! use paqoc::device::{AnalyticModel, Device};
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! let device = Device::grid5x5();
//! let mut source = AnalyticModel::new();
//! let result = compile(&bell, &device, &mut source, &PipelineOptions::m0());
//! println!("latency: {} dt, ESP: {:.4}", result.latency_dt, result.esp);
//! # assert!(result.latency_dt > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use paqoc_accqoc as accqoc;
pub use paqoc_backend as backend;
pub use paqoc_circuit as circuit;
pub use paqoc_core as core;
pub use paqoc_device as device;
pub use paqoc_exec as exec;
pub use paqoc_grape as grape;
pub use paqoc_mapping as mapping;
pub use paqoc_math as math;
pub use paqoc_mining as mining;
pub use paqoc_serve as serve;
pub use paqoc_store as store;
pub use paqoc_telemetry as telemetry;
pub use paqoc_workloads as workloads;
